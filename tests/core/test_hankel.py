"""Tests for Hankel matrices and the implicit operator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hankel import (HankelOperator, diagonal_average,
                               future_matrix, hankel_matrix,
                               min_series_length, past_matrix)
from repro.exceptions import InsufficientDataError, ParameterError


class TestHankelMatrix:
    def test_columns_are_shifted_windows(self):
        x = np.arange(10.0)
        m = hankel_matrix(x, window=3, count=4)
        assert m.shape == (3, 4)
        np.testing.assert_array_equal(m[:, 0], [0, 1, 2])
        np.testing.assert_array_equal(m[:, 3], [3, 4, 5])

    def test_start_offset(self):
        x = np.arange(10.0)
        m = hankel_matrix(x, window=2, count=2, start=5)
        np.testing.assert_array_equal(m[:, 0], [5, 6])
        np.testing.assert_array_equal(m[:, 1], [6, 7])

    def test_antidiagonals_are_constant(self):
        x = np.arange(20.0)
        m = hankel_matrix(x, window=4, count=5)
        for i in range(4):
            for j in range(5):
                assert m[i, j] == x[i + j]

    def test_too_short_series_raises(self):
        with pytest.raises(InsufficientDataError):
            hankel_matrix(np.arange(5.0), window=4, count=4)

    def test_invalid_window_raises(self):
        with pytest.raises(ParameterError):
            hankel_matrix(np.arange(10.0), window=1, count=2)

    def test_invalid_count_raises(self):
        with pytest.raises(ParameterError):
            hankel_matrix(np.arange(10.0), window=3, count=0)

    def test_negative_start_raises(self):
        with pytest.raises(ParameterError):
            hankel_matrix(np.arange(10.0), window=3, count=2, start=-1)

    def test_result_is_a_copy(self):
        x = np.arange(10.0)
        m = hankel_matrix(x, window=3, count=3)
        m[0, 0] = 99.0
        assert x[0] == 0.0

    def test_nan_input_rejected(self):
        x = np.arange(10.0)
        x[3] = np.nan
        with pytest.raises(ParameterError):
            hankel_matrix(x, window=3, count=3)


class TestPastFutureMatrices:
    def test_past_latest_sample_is_t_minus_1(self):
        x = np.arange(40.0)
        b = past_matrix(x, t=20, window=5, count=6)
        # Last column is q(t-1): ends at x[19].
        assert b[-1, -1] == 19.0

    def test_past_needs_enough_lead(self):
        with pytest.raises(InsufficientDataError):
            past_matrix(np.arange(40.0), t=5, window=5, count=6)

    def test_future_first_sample_is_t(self):
        x = np.arange(40.0)
        a = future_matrix(x, t=20, window=5, count=6)
        assert a[0, 0] == 20.0

    def test_future_with_lag(self):
        x = np.arange(40.0)
        a = future_matrix(x, t=20, window=5, count=4, lag=3)
        assert a[0, 0] == 23.0

    def test_future_negative_lag_rejected(self):
        with pytest.raises(ParameterError):
            future_matrix(np.arange(40.0), t=20, window=5, count=4, lag=-1)

    def test_min_series_length_is_tight(self):
        t, w, c = 20, 5, 6
        n = min_series_length(t, w, c)
        future_matrix(np.arange(float(n)), t=t, window=w, count=c)
        with pytest.raises(InsufficientDataError):
            future_matrix(np.arange(float(n - 1)), t=t, window=w, count=c)


class TestDiagonalAverage:
    def test_roundtrip_on_true_hankel(self):
        x = np.arange(12.0)
        m = hankel_matrix(x, window=4, count=6)
        np.testing.assert_allclose(diagonal_average(m), x[:9])

    def test_shape(self):
        m = np.ones((3, 5))
        assert diagonal_average(m).shape == (7,)

    def test_single_column(self):
        m = np.array([[1.0], [2.0], [3.0]])
        np.testing.assert_allclose(diagonal_average(m), [1.0, 2.0, 3.0])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            diagonal_average(np.empty((0, 0)))

    @given(st.integers(2, 8), st.integers(1, 8), st.integers(0, 2 ** 31))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, window, count, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=window + count - 1)
        m = hankel_matrix(x, window=window, count=count)
        np.testing.assert_allclose(diagonal_average(m), x, atol=1e-12)


class TestHankelOperator:
    def test_matvec_matches_dense(self, rng):
        x = rng.normal(size=60)
        op = HankelOperator(x, window=7, count=9, start=3)
        b = hankel_matrix(x, window=7, count=9, start=3)
        v = rng.normal(size=7)
        np.testing.assert_allclose(op.matvec(v), b @ (b.T @ v), atol=1e-10)

    def test_matmul_operator(self, rng):
        x = rng.normal(size=40)
        op = HankelOperator(x, window=5, count=5)
        v = rng.normal(size=5)
        np.testing.assert_allclose(op @ v, op.matvec(v))

    def test_correlate_is_bt_v(self, rng):
        x = rng.normal(size=40)
        op = HankelOperator(x, window=5, count=6)
        b = op.dense()
        v = rng.normal(size=5)
        np.testing.assert_allclose(op.correlate(v), b.T @ v, atol=1e-12)

    def test_expand_is_b_u(self, rng):
        x = rng.normal(size=40)
        op = HankelOperator(x, window=5, count=6)
        b = op.dense()
        u = rng.normal(size=6)
        np.testing.assert_allclose(op.expand(u), b @ u, atol=1e-12)

    def test_past_constructor_matches_past_matrix(self, rng):
        x = rng.normal(size=80)
        op = HankelOperator.past(x, t=40, window=9, count=9)
        np.testing.assert_allclose(op.dense(), past_matrix(x, 40, 9, 9))

    def test_past_needs_lead(self, rng):
        with pytest.raises(InsufficientDataError):
            HankelOperator.past(rng.normal(size=80), t=5, window=9, count=9)

    def test_wrong_vector_length_rejected(self, rng):
        op = HankelOperator(rng.normal(size=40), window=5, count=6)
        with pytest.raises(ParameterError):
            op.correlate(np.ones(6))
        with pytest.raises(ParameterError):
            op.expand(np.ones(5))

    def test_operator_is_symmetric_psd(self, rng):
        x = rng.normal(size=50)
        op = HankelOperator(x, window=6, count=8)
        dense_c = op.dense() @ op.dense().T
        # Symmetry via random vectors: <u, Cv> == <Cu, v>.
        for _ in range(5):
            u, v = rng.normal(size=6), rng.normal(size=6)
            assert abs(u @ op.matvec(v) - op.matvec(u) @ v) < 1e-9
            assert v @ op.matvec(v) >= -1e-9
        np.testing.assert_allclose(
            np.column_stack([op.matvec(e) for e in np.eye(6)]), dense_c,
            atol=1e-10,
        )

    def test_slice_is_independent_copy(self):
        x = np.arange(20.0)
        op = HankelOperator(x, window=3, count=4)
        x[0] = 999.0
        assert op.dense()[0, 0] == 0.0

    @given(st.integers(2, 10), st.integers(1, 10), st.integers(0, 2 ** 31))
    @settings(max_examples=30, deadline=None)
    def test_implicit_equals_explicit_property(self, window, count, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=window + count + 5)
        op = HankelOperator(x, window=window, count=count)
        b = op.dense()
        v = rng.normal(size=window)
        np.testing.assert_allclose(op.matvec(v), b @ (b.T @ v),
                                   atol=1e-8, rtol=1e-8)
