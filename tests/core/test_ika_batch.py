"""Cross-series batched scoring: bitwise parity with the per-series path.

``IkaSST.scores`` delegates to ``scores_batch`` with a single-row stack,
so the interesting invariant is not "batched matches single" (true by
construction) but **batch-size invariance**: a row must score to the
exact same bytes no matter which — or how large — a stack it is part of.
These tests pin that, plus ragged NaN-padded stacks, explicit lengths,
and the input validation.
"""

import numpy as np
import pytest

from repro.core.ika import IkaSST
from repro.core.rsst import ImprovedSSTParams
from repro.core.scoring import robust_normalise
from repro.exceptions import InsufficientDataError, ParameterError


def _stack(seed: int, n_series: int, length: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    stack = 10.0 + rng.normal(0.0, 0.5, size=(n_series, length))
    # Give half the rows a genuine step so both score regimes appear.
    for row in range(0, n_series, 2):
        stack[row, length // 2:] += rng.uniform(2.0, 5.0)
    return np.vstack([robust_normalise(row, baseline=length // 2)
                      for row in stack])


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("params", [
        ImprovedSSTParams(),
        ImprovedSSTParams(omega=5, eta=2),
        ImprovedSSTParams(omega=7, eta=4, future_directions="smallest"),
        ImprovedSSTParams(gated=False),
    ])
    def test_rows_score_bitwise_like_singles(self, params):
        stack = _stack(seed=11, n_series=6, length=140)
        ika = IkaSST(params)
        batched = ika.scores_batch(stack)
        assert batched.shape == stack.shape
        for row in range(stack.shape[0]):
            np.testing.assert_array_equal(batched[row],
                                          ika.scores(stack[row]))

    def test_sub_stacks_score_bitwise_identically(self):
        stack = _stack(seed=23, n_series=8, length=120)
        ika = IkaSST()
        full = ika.scores_batch(stack)
        np.testing.assert_array_equal(ika.scores_batch(stack[:3]), full[:3])
        np.testing.assert_array_equal(ika.scores_batch(stack[3:]), full[3:])
        shuffled = [5, 0, 7, 2]
        np.testing.assert_array_equal(ika.scores_batch(stack[shuffled]),
                                      full[shuffled])

    def test_matches_reference_per_row(self):
        stack = _stack(seed=7, n_series=3, length=110)
        ika = IkaSST()
        batched = ika.scores_batch(stack)
        for row in range(stack.shape[0]):
            np.testing.assert_allclose(
                batched[row], ika.scores_reference(stack[row]), atol=1e-10)


class TestRaggedStacks:
    def test_nan_padding_scores_each_prefix(self):
        lengths = (140, 90, 120, 140)
        rows = [_stack(seed=40 + i, n_series=1, length=n)[0]
                for i, n in enumerate(lengths)]
        width = max(lengths)
        padded = np.full((len(rows), width), np.nan)
        for i, row in enumerate(rows):
            padded[i, :row.size] = row
        ika = IkaSST()
        batched = ika.scores_batch(padded)
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(batched[i, :row.size],
                                          ika.scores(row))
            assert not batched[i, row.size:].any()

    def test_explicit_lengths_match_nan_padding(self):
        lengths = (130, 100, 130)
        rows = [_stack(seed=50 + i, n_series=1, length=n)[0]
                for i, n in enumerate(lengths)]
        width = max(lengths)
        nan_padded = np.full((len(rows), width), np.nan)
        zero_padded = np.zeros((len(rows), width))
        for i, row in enumerate(rows):
            nan_padded[i, :row.size] = row
            zero_padded[i, :row.size] = row
        ika = IkaSST()
        np.testing.assert_array_equal(
            ika.scores_batch(zero_padded, lengths=lengths),
            ika.scores_batch(nan_padded))

    def test_all_nan_row_is_too_short(self):
        """An all-NaN row has effective length 0 — rejected like an
        empty series, not silently zero-scored."""
        row = _stack(seed=61, n_series=1, length=120)[0]
        padded = np.vstack([row, np.full(120, np.nan)])
        ika = IkaSST()
        with pytest.raises(InsufficientDataError):
            ika.scores_batch(padded)


class TestValidation:
    def test_rejects_non_2d(self):
        ika = IkaSST()
        with pytest.raises(ParameterError):
            ika.scores_batch(np.zeros(100))
        with pytest.raises(ParameterError):
            ika.scores_batch(np.zeros((2, 3, 4)))

    def test_rejects_mismatched_lengths(self):
        ika = IkaSST()
        stack = np.zeros((3, 100))
        with pytest.raises(ParameterError):
            ika.scores_batch(stack, lengths=(100, 100))

    def test_rejects_out_of_range_lengths(self):
        ika = IkaSST()
        stack = np.zeros((2, 100))
        with pytest.raises(ParameterError):
            ika.scores_batch(stack, lengths=(100, 101))
        with pytest.raises(ParameterError):
            ika.scores_batch(stack, lengths=(-1, 100))

    def test_too_short_row_raises_like_scores(self):
        ika = IkaSST()
        with pytest.raises(InsufficientDataError):
            ika.scores_batch(np.zeros((2, 10)))
        with pytest.raises(InsufficientDataError):
            ika.scores(np.zeros(10))
