"""Tests for the Lanczos tridiagonalisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hankel import HankelOperator
from repro.core.lanczos import krylov_dimension, lanczos
from repro.exceptions import ParameterError


def random_psd(rng, n):
    a = rng.normal(size=(n, n))
    return a @ a.T


class TestLanczos:
    def test_basis_is_orthonormal(self, rng):
        c = random_psd(rng, 12)
        result = lanczos(c, rng.normal(size=12), k=6)
        q = result.basis
        np.testing.assert_allclose(q.T @ q, np.eye(result.k), atol=1e-8)

    def test_tridiagonal_is_projection(self, rng):
        """T_k == Q^T C Q — the defining Lanczos identity."""
        c = random_psd(rng, 10)
        result = lanczos(c, rng.normal(size=10), k=5)
        q = result.basis
        np.testing.assert_allclose(result.tridiagonal(), q.T @ c @ q,
                                   atol=1e-7)

    def test_full_dimension_recovers_spectrum(self, rng):
        c = random_psd(rng, 7)
        result = lanczos(c, rng.normal(size=7), k=7)
        ritz = np.linalg.eigvalsh(result.tridiagonal())
        true = np.linalg.eigvalsh(c)
        np.testing.assert_allclose(np.sort(ritz), np.sort(true), atol=1e-6)

    def test_extreme_ritz_values_converge_fast(self, rng):
        c = random_psd(rng, 30)
        result = lanczos(c, rng.normal(size=30), k=10)
        ritz_max = np.linalg.eigvalsh(result.tridiagonal()).max()
        true_max = np.linalg.eigvalsh(c).max()
        assert ritz_max <= true_max + 1e-8
        assert ritz_max > 0.9 * true_max

    def test_seed_is_first_basis_vector(self, rng):
        c = random_psd(rng, 8)
        seed = rng.normal(size=8)
        result = lanczos(c, seed, k=4)
        np.testing.assert_allclose(result.basis[:, 0],
                                   seed / np.linalg.norm(seed), atol=1e-12)

    def test_breakdown_on_invariant_subspace(self):
        # Seeding with an exact eigenvector makes the Krylov space
        # 1-dimensional: the recursion must stop after one step.
        c = np.diag([4.0, 3.0, 2.0, 1.0])
        seed = np.array([1.0, 0.0, 0.0, 0.0])
        result = lanczos(c, seed, k=4)
        assert result.breakdown
        assert result.k == 1
        assert result.alpha[0] == pytest.approx(4.0)

    def test_works_with_hankel_operator(self, rng):
        x = rng.normal(size=60)
        op = HankelOperator.past(x, t=30, window=9, count=9)
        dense_c = op.dense() @ op.dense().T
        seed = rng.normal(size=9)
        r_implicit = lanczos(op, seed, k=5)
        r_dense = lanczos(dense_c, seed, k=5)
        np.testing.assert_allclose(r_implicit.alpha, r_dense.alpha,
                                   atol=1e-8)
        np.testing.assert_allclose(r_implicit.beta, r_dense.beta, atol=1e-8)

    def test_works_with_callable(self, rng):
        c = random_psd(rng, 6)
        seed = rng.normal(size=6)
        r1 = lanczos(c, seed, k=3)
        r2 = lanczos(lambda v: c @ v, seed, k=3)
        np.testing.assert_allclose(r1.alpha, r2.alpha, atol=1e-10)

    def test_zero_seed_rejected(self, rng):
        with pytest.raises(ParameterError):
            lanczos(random_psd(rng, 5), np.zeros(5), k=3)

    def test_k_bounds(self, rng):
        c = random_psd(rng, 5)
        seed = rng.normal(size=5)
        with pytest.raises(ParameterError):
            lanczos(c, seed, k=0)
        with pytest.raises(ParameterError):
            lanczos(c, seed, k=6)

    def test_non_square_operator_rejected(self, rng):
        with pytest.raises(ParameterError):
            lanczos(rng.normal(size=(4, 5)), rng.normal(size=4), k=2)

    @given(st.integers(4, 12), st.integers(0, 2 ** 31))
    @settings(max_examples=25, deadline=None)
    def test_ritz_values_interlace_property(self, n, seed_int):
        """All Ritz values lie within the spectrum's range (PSD case)."""
        rng = np.random.default_rng(seed_int)
        c = random_psd(rng, n)
        k = max(1, n // 2)
        result = lanczos(c, rng.normal(size=n), k=k)
        ritz = np.linalg.eigvalsh(result.tridiagonal())
        true = np.linalg.eigvalsh(c)
        assert ritz.min() >= true.min() - 1e-7
        assert ritz.max() <= true.max() + 1e-7


class TestKrylovDimension:
    def test_paper_eq14(self):
        # k = 2*eta for even eta, 2*eta - 1 for odd eta.
        assert krylov_dimension(1) == 1
        assert krylov_dimension(2) == 4
        assert krylov_dimension(3) == 5
        assert krylov_dimension(4) == 8

    def test_invalid(self):
        with pytest.raises(ParameterError):
            krylov_dimension(0)
