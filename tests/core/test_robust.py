"""Tests for the robust statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.robust import (MAD_TO_SIGMA, mad, median, median_and_mad,
                               robust_zscores, window_pair)
from repro.exceptions import InsufficientDataError, ParameterError

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestMedianAndMad:
    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_mad_of_constant_is_zero(self):
        assert mad([5.0] * 10) == 0.0

    def test_mad_known_value(self):
        # values 1..7: median 4, deviations [3,2,1,0,1,2,3], MAD 2.
        assert mad(list(range(1, 8))) == 2.0

    def test_mad_with_explicit_center(self):
        assert mad([1.0, 2.0, 3.0], center=0.0) == 2.0

    def test_combined_matches_separate(self, rng):
        x = rng.normal(size=101)
        med, scale = median_and_mad(x)
        assert med == median(x)
        assert scale == mad(x)

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            median([])
        with pytest.raises(InsufficientDataError):
            mad([])

    def test_mad_robust_to_outliers(self, rng):
        x = rng.normal(size=200)
        contaminated = x.copy()
        contaminated[:20] += 1e6
        _, clean_scale = median_and_mad(x)
        _, dirty_scale = median_and_mad(contaminated)
        # 10% contamination moves MAD by far less than it moves std.
        assert dirty_scale < 2.0 * clean_scale
        assert contaminated.std() > 100 * x.std()

    def test_mad_to_sigma_consistency(self, rng):
        x = rng.normal(0.0, 3.0, size=200_000)
        _, scale = median_and_mad(x)
        assert abs(MAD_TO_SIGMA * scale - 3.0) < 0.05

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_mad_nonnegative_property(self, values):
        assert mad(values) >= 0.0

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.floats(-100, 100, allow_nan=False),
           st.floats(0.001, 100, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_affine_equivariance_property(self, values, shift, scale):
        """median(a*x + b) == a*median(x) + b, MAD(a*x+b) == a*MAD(x)."""
        x = np.asarray(values)
        med0, mad0 = median_and_mad(x)
        med1, mad1 = median_and_mad(scale * x + shift)
        assert med1 == pytest.approx(scale * med0 + shift, rel=1e-9,
                                     abs=1e-6)
        assert mad1 == pytest.approx(scale * mad0, rel=1e-9, abs=1e-6)


class TestRobustZscores:
    def test_centering(self, rng):
        x = rng.normal(10.0, 2.0, size=1001)
        z = robust_zscores(x)
        assert abs(np.median(z)) < 1e-9

    def test_zero_mad_infinite_tail(self):
        x = np.array([1.0] * 9 + [5.0])
        z = robust_zscores(x)
        assert np.all(z[:9] == 0.0)
        assert np.isinf(z[9]) and z[9] > 0

    def test_zero_mad_negative_direction(self):
        x = np.array([1.0] * 9 + [-5.0])
        z = robust_zscores(x)
        assert np.isinf(z[9]) and z[9] < 0


class TestWindowPair:
    def test_shapes_and_contents(self):
        x = np.arange(50.0)
        before, after = window_pair(x, t=20, half_width=5)
        np.testing.assert_array_equal(before, np.arange(15.0, 20.0))
        np.testing.assert_array_equal(after, np.arange(20.0, 25.0))

    def test_boundary_exact_fit(self):
        x = np.arange(10.0)
        before, after = window_pair(x, t=5, half_width=5)
        assert before.size == after.size == 5

    def test_out_of_range_raises(self):
        x = np.arange(10.0)
        with pytest.raises(InsufficientDataError):
            window_pair(x, t=2, half_width=5)
        with pytest.raises(InsufficientDataError):
            window_pair(x, t=8, half_width=5)

    def test_bad_width_raises(self):
        with pytest.raises(ParameterError):
            window_pair(np.arange(10.0), t=5, half_width=0)
