"""Tests for the improved SST (exact) and its IKA fast path."""

import numpy as np
import pytest

from repro.core.ika import IkaSST
from repro.core.rsst import ImprovedSST, ImprovedSSTParams, median_mad_gate
from repro.core.scoring import robust_normalise
from repro.exceptions import InsufficientDataError, ParameterError


class TestImprovedSSTParams:
    def test_defaults_match_paper(self):
        p = ImprovedSSTParams()
        assert p.omega == 9 and p.eta == 3
        assert p.delta == p.gamma == p.omega       # gamma = delta = omega
        assert p.window_length == 34               # W_FUNNEL

    @pytest.mark.parametrize("omega,expected_w", [(5, 18), (9, 34),
                                                  (15, 58)])
    def test_window_lengths(self, omega, expected_w):
        assert ImprovedSSTParams(omega=omega).window_length == expected_w

    def test_invalid_direction_mode(self):
        with pytest.raises(ParameterError):
            ImprovedSSTParams(future_directions="median")

    def test_invalid_eta(self):
        with pytest.raises(ParameterError):
            ImprovedSSTParams(omega=5, eta=6)


class TestMedianMadGate:
    def test_zero_on_stable_constant(self):
        x = np.full(100, 7.0)
        assert median_mad_gate(x, 50, omega=9) == 0.0

    def test_level_shift_passes_through_median_term(self):
        x = np.r_[np.zeros(50), np.ones(50) * 4.0]
        gate = median_mad_gate(x, 50, omega=9)
        assert gate == pytest.approx(2.0)      # sqrt(4) + sqrt(0)

    def test_variance_change_passes_through_mad_term(self, rng):
        x = np.r_[rng.normal(0, 0.1, 50), rng.normal(0, 4.0, 50)]
        gate = median_mad_gate(x, 50, omega=9)
        assert gate > 1.0

    def test_symmetric_in_direction(self):
        up = np.r_[np.zeros(50), np.full(50, 3.0)]
        down = np.r_[np.full(50, 3.0), np.zeros(50)]
        assert median_mad_gate(up, 50, 9) == pytest.approx(
            median_mad_gate(down, 50, 9))


class TestImprovedSST:
    def test_detects_step(self, step_series):
        xs = robust_normalise(step_series, baseline=90)
        scores = ImprovedSST().scores(xs)
        assert scores[95:110].max() > 1.0

    def test_raw_score_in_unit_interval(self, rng):
        x = rng.normal(size=120)
        sst = ImprovedSST(ImprovedSSTParams(gated=False))
        scores = sst.scores(x)
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0 + 1e-12)

    def test_gating_suppresses_stable_sections(self, rng):
        x = np.full(120, 3.0)
        gated = ImprovedSST().scores(x)
        assert gated.max() == 0.0

    def test_smallest_direction_variant_runs(self, step_series):
        xs = robust_normalise(step_series, baseline=90)
        p = ImprovedSSTParams(future_directions="smallest")
        scores = ImprovedSST(p).scores(xs)
        assert scores.shape == xs.shape
        assert np.all(scores >= 0.0)

    def test_too_short_raises(self, rng):
        with pytest.raises(InsufficientDataError):
            ImprovedSST().scores(rng.normal(size=30))

    def test_future_pairs_shapes(self, rng):
        x = rng.normal(size=100)
        sst = ImprovedSST()
        lam, betas = sst.future_pairs(x, 50)
        assert lam.shape == (3,)
        assert betas.shape == (9, 3)
        assert np.all(lam >= 0.0)
        # Largest mode: eigenvalues descending.
        assert np.all(np.diff(lam) <= 1e-9)


class TestIkaSST:
    def test_batched_equals_reference(self, step_series):
        xs = robust_normalise(step_series, baseline=90)
        ika = IkaSST()
        np.testing.assert_allclose(ika.scores(xs), ika.scores_reference(xs),
                                   atol=1e-10)

    def test_batched_equals_reference_on_noise(self, noise_series):
        xs = robust_normalise(noise_series)
        ika = IkaSST()
        np.testing.assert_allclose(ika.scores(xs), ika.scores_reference(xs),
                                   atol=1e-10)

    def test_agrees_with_exact_at_peak(self, step_series):
        """IKA and exact SVD agree on where and how strongly it fires."""
        xs = robust_normalise(step_series, baseline=90)
        exact = ImprovedSST().scores(xs)
        fast = IkaSST().scores(xs)
        assert abs(int(np.argmax(exact)) - int(np.argmax(fast))) <= 5
        # The k=5 Krylov space underestimates the exact discordance
        # somewhat; what matters for detection is that both clear the
        # declaration threshold at the same place.
        assert fast.max() == pytest.approx(exact.max(), rel=0.5)
        assert fast.max() > 1.0 and exact.max() > 1.0

    def test_correlates_with_exact(self, ramp_series):
        xs = robust_normalise(ramp_series, baseline=90)
        exact = ImprovedSST().scores(xs)
        fast = IkaSST().scores(xs)
        active = slice(17, -17)
        corr = np.corrcoef(exact[active], fast[active])[0, 1]
        assert corr > 0.9

    def test_krylov_dimension_from_eta(self):
        assert IkaSST(ImprovedSSTParams(eta=3)).krylov_k == 5
        assert IkaSST(ImprovedSSTParams(eta=2)).krylov_k == 4

    def test_score_at_matches_batched(self, step_series):
        xs = robust_normalise(step_series, baseline=90)
        ika = IkaSST()
        batched = ika.scores(xs)
        for t in (30, 60, 100, 150):
            assert batched[t] == pytest.approx(ika.score_at(xs, t),
                                               abs=1e-10)

    def test_omega5_quick_mitigation_profile(self, rng):
        x = np.r_[np.zeros(40), np.full(40, 3.0)] + 0.05 * rng.normal(size=80)
        xs = robust_normalise(x, baseline=35)
        p = ImprovedSSTParams(omega=5)
        scores = IkaSST(p).scores(xs)
        assert scores[36:50].max() > 0.5

    def test_constant_series_zero_scores(self):
        scores = IkaSST().scores(np.full(100, 2.0))
        assert scores.max() == 0.0

    def test_too_short_raises(self, rng):
        with pytest.raises(InsufficientDataError):
            IkaSST().scores(rng.normal(size=20))

    def test_smallest_variant_batched_equals_reference(self, step_series):
        xs = robust_normalise(step_series, baseline=90)
        ika = IkaSST(ImprovedSSTParams(future_directions="smallest"))
        np.testing.assert_allclose(ika.scores(xs), ika.scores_reference(xs),
                                   atol=1e-10)

    def test_ungated_batched_equals_reference(self, step_series):
        xs = robust_normalise(step_series, baseline=90)
        ika = IkaSST(ImprovedSSTParams(gated=False))
        np.testing.assert_allclose(ika.scores(xs), ika.scores_reference(xs),
                                   atol=1e-10)
