"""Tests for change-score post-processing and declaration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import (ChangeDeclarationPolicy, PERSISTENCE_MINUTES,
                                candidate_mask, classify_change,
                                declare_changes, estimate_change_start,
                                robust_normalise, robust_normalise_batch)
from repro.exceptions import InsufficientDataError, ParameterError


class TestRobustNormalise:
    def test_baseline_statistics(self, rng):
        x = rng.normal(50.0, 2.0, size=300)
        z = robust_normalise(x)
        assert abs(np.median(z)) < 0.05
        assert np.std(z) == pytest.approx(1.0, rel=0.15)

    def test_baseline_prefix_only(self, rng):
        x = np.r_[rng.normal(0, 1, 100), rng.normal(100, 1, 100)]
        z = robust_normalise(x, baseline=100)
        # Post-change values measured in baseline sigmas.
        assert np.median(z[100:]) == pytest.approx(100.0, rel=0.1)

    def test_constant_series_safe(self):
        z = robust_normalise(np.full(50, 3.0))
        assert np.all(z == 0.0)

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            robust_normalise([])

    def test_bad_baseline_raises(self, rng):
        with pytest.raises(ParameterError):
            robust_normalise(rng.normal(size=10), baseline=11)

    @given(st.integers(0, 2 ** 31), st.floats(0.1, 1e4),
           st.floats(-1e4, 1e4))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance_property(self, seed, scale, shift):
        """Normalisation removes affine transformations of the input."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=100)
        z1 = robust_normalise(x)
        z2 = robust_normalise(scale * x + shift)
        np.testing.assert_allclose(z1, z2, atol=1e-6)


class TestEstimateChangeStart:
    def test_finds_step_start(self, rng):
        x = 0.1 * rng.normal(size=200)
        x[120:] += 5.0
        start = estimate_change_start(x, detected_at=140, baseline=120)
        assert 118 <= start <= 122

    def test_no_deviation_returns_detection(self, rng):
        x = 0.1 * rng.normal(size=100)
        assert estimate_change_start(x, detected_at=50) == 50

    def test_out_of_range_raises(self, rng):
        with pytest.raises(ParameterError):
            estimate_change_start(rng.normal(size=10), detected_at=10)


class TestClassifyChange:
    def test_step_classified_as_level_shift(self, rng):
        x = 0.05 * rng.normal(size=100)
        x[50:] += 3.0
        assert classify_change(x, start=50, detected_at=60) == "level_shift"

    def test_gradual_ramp_classified_as_ramp(self, rng):
        x = 0.05 * rng.normal(size=120)
        x[40:100] += np.linspace(0, 3.0, 60)
        x[100:] += 3.0
        assert classify_change(x, start=45, detected_at=85) == "ramp"

    def test_tiny_segment_defaults_to_level_shift(self):
        x = np.array([0.0, 5.0])
        assert classify_change(x, 1, 1, context=0) == "level_shift"


class TestChangeDeclarationPolicy:
    def test_defaults(self):
        p = ChangeDeclarationPolicy()
        assert p.persistence == PERSISTENCE_MINUTES == 7

    @pytest.mark.parametrize("kwargs", [
        dict(score_threshold=0.0), dict(persistence=0),
        dict(deviation_sigmas=0.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            ChangeDeclarationPolicy(**kwargs)


class TestDeclareChanges:
    def _scores_for(self, x):
        from repro.core.ika import IkaSST
        return IkaSST().scores(robust_normalise(x, baseline=100))

    def test_declares_persistent_step(self, step_series):
        xs = robust_normalise(step_series, baseline=100)
        changes = declare_changes(xs, self._scores_for(step_series))
        assert len(changes) >= 1
        change = changes[0]
        assert 95 <= change.start_index <= 108
        assert change.direction == 1
        assert change.index >= change.start_index

    def test_rejects_one_off_spike(self, rng):
        x = 10.0 + 0.5 * rng.normal(size=200)
        x[100:103] += 6.0          # 3-minute excursion < 7-minute rule
        xs = robust_normalise(x, baseline=100)
        changes = declare_changes(xs, self._scores_for(x))
        assert changes == []

    def test_accepts_just_long_enough_excursion(self, rng):
        x = 10.0 + 0.3 * rng.normal(size=200)
        x[100:100 + PERSISTENCE_MINUTES + 2] += 6.0
        xs = robust_normalise(x, baseline=100)
        changes = declare_changes(xs, self._scores_for(x))
        assert len(changes) >= 1

    def test_no_changes_on_noise(self, noise_series):
        xs = robust_normalise(noise_series, baseline=100)
        assert declare_changes(xs, self._scores_for(noise_series)) == []

    def test_detects_downward_change(self, rng):
        x = 10.0 + 0.5 * rng.normal(size=200)
        x[100:] -= 3.0
        xs = robust_normalise(x, baseline=100)
        changes = declare_changes(xs, self._scores_for(x))
        assert changes and changes[0].direction == -1

    def test_first_only_stops_early(self, rng):
        x = 10.0 + 0.3 * rng.normal(size=300)
        x[100:] += 4.0
        x[200:] += 4.0
        xs = robust_normalise(x, baseline=100)
        scores = self._scores_for(x)
        all_changes = declare_changes(xs, scores)
        first = declare_changes(xs, scores, first_only=True)
        assert len(first) == 1
        assert len(all_changes) >= len(first)

    def test_lookahead_shifts_declaration_index(self, rng):
        x = 10.0 + 0.3 * rng.normal(size=200)
        x[100:] += 4.0
        xs = robust_normalise(x, baseline=100)
        scores = self._scores_for(x)
        without = declare_changes(xs, scores)
        with_la = declare_changes(xs, scores, lookahead=16)
        assert with_la[0].index >= without[0].index
        # Same underlying change.
        assert abs(with_la[0].start_index - without[0].start_index) <= 2

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ParameterError):
            declare_changes(rng.normal(size=50), rng.normal(size=40))

    def test_negative_lookahead_raises(self, rng):
        x = rng.normal(size=50)
        with pytest.raises(ParameterError):
            declare_changes(x, np.zeros(50), lookahead=-1)

    def test_delay_floor_is_persistence(self, rng):
        """A declared change is never faster than the persistence rule."""
        x = 10.0 + 0.1 * rng.normal(size=200)
        x[100:] += 8.0
        xs = robust_normalise(x, baseline=100)
        changes = declare_changes(xs, self._scores_for(x))
        assert changes
        change = changes[0]
        assert change.index - change.start_index >= 0
        # Confirmation needs at least `persistence` bins from its
        # candidate; candidates cannot precede the start by much.
        assert change.index >= change.start_index + 3


class TestRobustNormaliseBatch:
    def test_rows_match_per_series_bitwise(self, rng):
        stack = rng.normal(50.0, 2.0, size=(5, 200))
        batched = robust_normalise_batch(stack)
        for row in range(stack.shape[0]):
            np.testing.assert_array_equal(batched[row],
                                          robust_normalise(stack[row]))

    def test_scalar_and_per_row_baselines(self, rng):
        stack = rng.normal(size=(4, 150))
        scalar = robust_normalise_batch(stack, baselines=80)
        per_row = robust_normalise_batch(stack, baselines=[80, 60, 80, 100])
        for row in range(4):
            np.testing.assert_array_equal(
                scalar[row], robust_normalise(stack[row], baseline=80))
        for row, baseline in enumerate([80, 60, 80, 100]):
            np.testing.assert_array_equal(
                per_row[row],
                robust_normalise(stack[row], baseline=baseline))

    def test_stats_override_per_row(self, rng):
        stack = rng.normal(size=(3, 120))
        stats = [None, (0.5, 2.0), None]
        batched = robust_normalise_batch(stack, baselines=60, stats=stats)
        np.testing.assert_array_equal(
            batched[0], robust_normalise(stack[0], baseline=60))
        np.testing.assert_array_equal(
            batched[1],
            robust_normalise(stack[1], baseline=60, stats=(0.5, 2.0)))

    def test_rejects_non_2d_and_bad_baselines(self, rng):
        with pytest.raises(ParameterError):
            robust_normalise_batch(rng.normal(size=50))
        stack = rng.normal(size=(2, 50))
        with pytest.raises(ParameterError):
            robust_normalise_batch(stack, baselines=[10])
        with pytest.raises(ParameterError):
            robust_normalise_batch(stack, baselines=[10, 51])
        with pytest.raises(ParameterError):
            robust_normalise_batch(stack, baselines=0)


class TestCandidateMask:
    def test_matches_threshold_scan(self, rng):
        scores = rng.uniform(0.0, 2.0, size=100)
        policy = ChangeDeclarationPolicy()
        mask = candidate_mask(scores, policy)
        np.testing.assert_array_equal(
            mask, scores > policy.score_threshold)

    def test_accepts_2d_stack(self, rng):
        scores = rng.uniform(0.0, 2.0, size=(3, 80))
        mask = candidate_mask(scores)
        assert mask.shape == scores.shape
        policy = ChangeDeclarationPolicy()
        for row in range(3):
            np.testing.assert_array_equal(
                mask[row], candidate_mask(scores[row], policy))
