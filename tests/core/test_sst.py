"""Tests for classic SST (paper section 3.2.1)."""

import numpy as np
import pytest

from repro.core.sst import SSTParams, SingularSpectrumTransform, sst_scores
from repro.exceptions import InsufficientDataError, ParameterError


class TestSSTParams:
    def test_paper_defaults(self):
        p = SSTParams.paper_defaults(omega=9)
        assert (p.omega, p.delta, p.gamma, p.rho, p.eta) == (9, 9, 9, 0, 3)

    def test_window_length_matches_paper_w34(self):
        # Section 4.1: W_FUNNEL = 34 with omega = 9.
        assert SSTParams.paper_defaults(9).window_length == 34

    def test_eta_clamped_for_small_omega(self):
        assert SSTParams.paper_defaults(2).eta == 2

    @pytest.mark.parametrize("bad", [
        dict(omega=1), dict(delta=0), dict(gamma=0), dict(rho=-1),
        dict(eta=0), dict(eta=10, omega=9),
    ])
    def test_invalid_params(self, bad):
        with pytest.raises(ParameterError):
            SSTParams(**bad)

    def test_index_ranges(self):
        p = SSTParams.paper_defaults(9)
        assert p.first_index() == 17
        assert p.last_index(100) == 100 - 17 + 1


class TestSingularSpectrumTransform:
    def test_scores_elevated_around_step(self, rng):
        x = np.r_[np.zeros(80), np.ones(80)] + 0.02 * rng.normal(size=160)
        scores = SingularSpectrumTransform().scores(x)
        # The score at t looks ahead omega+gamma-1 samples, so the step
        # at 80 elevates scores from ~index 63 onwards.  Classic SST is
        # noise-fragile (the paper's stated motivation for the improved
        # variant), so we assert elevation near the step rather than a
        # global argmax there.
        assert scores[63:98].max() > 0.3

    def test_scores_in_unit_interval(self, rng):
        x = rng.normal(size=120)
        scores = SingularSpectrumTransform().scores(x)
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0)

    def test_edges_are_zero(self, rng):
        x = rng.normal(size=100)
        p = SSTParams.paper_defaults(9)
        scores = SingularSpectrumTransform(p).scores(x)
        assert np.all(scores[:p.first_index()] == 0.0)
        assert np.all(scores[p.last_index(100):] == 0.0)

    def test_constant_series_scores_low(self):
        x = np.full(100, 5.0)
        scores = SingularSpectrumTransform().scores(x)
        # A constant series has a rank-1 past subspace that contains the
        # (constant) future direction: no change anywhere.
        assert scores.max() < 1e-6

    def test_sinusoid_scores_low(self):
        t = np.arange(300)
        x = np.sin(2 * np.pi * t / 50.0)
        scores = SingularSpectrumTransform().scores(x)
        # Periodic dynamics are captured by the eta=3 subspace.
        assert np.median(scores[17:-17]) < 0.1

    def test_frequency_change_detected(self):
        t = np.arange(150)
        x = np.r_[np.sin(2 * np.pi * t[:75] / 25.0),
                  np.sin(2 * np.pi * t[75:] / 7.0)]
        scores = SingularSpectrumTransform().scores(x)
        assert int(np.argmax(scores)) in range(55, 95)
        assert scores.max() > 0.3

    def test_too_short_series_raises(self, rng):
        with pytest.raises(InsufficientDataError):
            SingularSpectrumTransform().scores(rng.normal(size=30))

    def test_past_subspace_is_orthonormal(self, rng):
        x = rng.normal(size=100)
        sst = SingularSpectrumTransform()
        u = sst.past_subspace(x, 50)
        np.testing.assert_allclose(u.T @ u, np.eye(u.shape[1]), atol=1e-10)

    def test_future_direction_is_unit(self, rng):
        x = rng.normal(size=100)
        sst = SingularSpectrumTransform()
        beta = sst.future_direction(x, 50)
        assert np.linalg.norm(beta) == pytest.approx(1.0, abs=1e-10)

    def test_score_at_single_index_matches_scores(self, rng):
        x = rng.normal(size=100)
        sst = SingularSpectrumTransform()
        scores = sst.scores(x)
        assert scores[40] == pytest.approx(sst.score_at(x, 40))

    def test_convenience_wrapper(self, rng):
        x = rng.normal(size=100)
        np.testing.assert_allclose(
            sst_scores(x), SingularSpectrumTransform().scores(x))
