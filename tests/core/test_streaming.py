"""Tests for the online (streaming) detector and assessor."""

import numpy as np
import pytest

from repro.core.funnel import Funnel
from repro.core.scoring import declare_changes, robust_normalise
from repro.core.streaming import StreamingAssessor, StreamingDetector
from repro.exceptions import ParameterError
from repro.types import DetectedChange, Verdict


class _ReferenceDetector(StreamingDetector):
    """The pre-cache evaluation loop: full rescore on every push."""

    def _evaluate(self):
        n = len(self._values)
        if n < self.config.sst.window_length:
            return None
        local_change = self.change_index - self._offset
        baseline = max(1, min(local_change, n)) if local_change > 0 else 1
        x = np.asarray(self._values)
        normalised = robust_normalise(x, baseline=baseline)
        scores = self.scorer.scores(normalised)
        declared = declare_changes(
            normalised, scores, self.config.policy,
            lookahead=self.config.sst.lookahead - 1,
        )
        last_seen = (self._declared[-1].index if self._declared
                     else self.change_index - 1)
        for change in declared:
            absolute = DetectedChange(
                index=change.index + self._offset,
                start_index=change.start_index + self._offset,
                score=change.score,
                kind=change.kind,
                direction=change.direction,
            )
            if absolute.start_index < self.change_index - 1:
                continue
            if absolute.index <= last_seen:
                continue
            if absolute.index == self.position - 1:
                self._declared.append(absolute)
                return absolute
        return None


class TestStreamingDetector:
    def test_detects_step(self, rng):
        detector = StreamingDetector(change_index=100)
        x = 50.0 + rng.normal(0, 0.5, size=300)
        x[100:] += 5.0
        hits = detector.extend(x)
        assert hits
        assert 100 <= hits[0].start_index <= 110
        assert hits[0].direction == 1

    def test_quiet_stream_never_fires(self, rng):
        detector = StreamingDetector(change_index=100)
        x = 50.0 + rng.normal(0, 0.5, size=300)
        assert detector.extend(x) == []

    def test_matches_offline_declaration(self, rng):
        """Streaming and offline detection agree on the first change."""
        x = 50.0 + rng.normal(0, 0.5, size=300)
        x[150:] += 4.0
        offline = Funnel().detect(x, change_index=150)
        detector = StreamingDetector(change_index=150)
        online = detector.extend(x)
        assert offline and online
        assert online[0].index == offline[0].index
        assert online[0].start_index == offline[0].start_index

    def test_declaration_fires_exactly_once(self, rng):
        detector = StreamingDetector(change_index=100)
        x = 50.0 + rng.normal(0, 0.5, size=260)
        x[100:] += 5.0
        hits = [i for i, v in enumerate(x) if detector.push(v)]
        # The persistent shift produces exactly one declaration, on the
        # bin that completes its evidence.
        assert len(hits) == 1
        assert hits[0] == detector.declared[0].index

    def test_pre_change_shift_ignored(self, rng):
        detector = StreamingDetector(change_index=200)
        x = 50.0 + rng.normal(0, 0.5, size=300)
        x[80:] += 5.0            # before the software change
        assert detector.extend(x) == []

    def test_history_cap_keeps_absolute_indices(self, rng):
        detector = StreamingDetector(change_index=580, max_history=128)
        x = 50.0 + rng.normal(0, 0.5, size=700)
        x[580:] += 5.0
        hits = detector.extend(x)
        assert hits
        assert 578 <= hits[0].start_index <= 592
        assert hits[0].index >= 580

    def test_position_tracks_stream(self, rng):
        detector = StreamingDetector(change_index=10)
        detector.extend(rng.normal(size=25))
        assert detector.position == 25

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            StreamingDetector(change_index=-1)
        with pytest.raises(ParameterError):
            StreamingDetector(change_index=0, max_history=10)
        detector = StreamingDetector(change_index=0)
        with pytest.raises(ParameterError):
            detector.push(float("nan"))

    @pytest.mark.parametrize("change_index,step_index,size,max_history", [
        (100, 100, 300, 4096),  # plain step after warmup
        (0, 60, 220, 4096),     # change at stream start (baseline = 1)
        (580, 580, 700, 128),   # ring trims; baseline shifts every push
    ])
    def test_suffix_rescore_matches_full_rescore(self, rng, change_index,
                                                 step_index, size,
                                                 max_history):
        """Cached suffix scoring pushes the very bytes a full pass does.

        Every push is compared against the reference detector (which
        renormalises and rescores the whole buffer each time), and the
        cached arrays are checked bitwise against a one-shot transform
        of the final buffer.
        """
        x = 50.0 + rng.normal(0, 0.5, size=size)
        x[step_index:] += 4.0
        fast = StreamingDetector(change_index=change_index,
                                 max_history=max_history)
        slow = _ReferenceDetector(change_index=change_index,
                                  max_history=max_history)
        for value in x:
            assert fast.push(value) == slow.push(value)
        assert fast.declared == slow.declared
        assert fast.declared

        n = len(fast._values)
        local_change = change_index - fast._offset
        baseline = max(1, min(local_change, n)) if local_change > 0 else 1
        buffer = np.asarray(fast._values)
        normalised = robust_normalise(buffer, baseline=baseline)
        assert fast._norm_buf[:n].tobytes() == normalised.tobytes()
        assert (fast._score_buf[:n].tobytes()
                == fast.scorer.scores(normalised).tobytes())

    def test_quiet_stream_parity_with_full_rescore(self, rng):
        """No-declaration streams take the gated fast path throughout."""
        x = 50.0 + rng.normal(0, 0.5, size=280)
        fast = StreamingDetector(change_index=100)
        slow = _ReferenceDetector(change_index=100)
        for value in x:
            assert fast.push(value) == slow.push(value)
        assert fast.declared == slow.declared == []


class TestStreamingAssessor:
    def _streams(self, rng, effect, common=0.0, bins=260):
        shared = 50.0 + rng.normal(0, 1.0, size=bins)
        treated = shared[None, :] + rng.normal(0, 0.5, size=(3, bins))
        control = shared[None, :] + rng.normal(0, 0.5, size=(9, bins))
        treated[:, 130:] += effect
        if common:
            treated[:, 130:] += common
            control[:, 130:] += common
        return treated, control

    def test_attributes_treated_only_impact(self, rng):
        treated, control = self._streams(rng, effect=6.0)
        assessor = StreamingAssessor(change_index=130)
        outcome = None
        for t in range(treated.shape[1]):
            outcome = outcome or assessor.push(treated[:, t],
                                               control[:, t])
        assert outcome is not None
        assert outcome.verdict is Verdict.CAUSED_BY_CHANGE
        assert outcome.did_estimate > 1.0

    def test_excludes_common_event(self, rng):
        treated, control = self._streams(rng, effect=0.0, common=6.0)
        assessor = StreamingAssessor(change_index=130)
        outcome = None
        for t in range(treated.shape[1]):
            outcome = outcome or assessor.push(treated[:, t],
                                               control[:, t])
        assert outcome is not None
        assert outcome.verdict is Verdict.OTHER_REASONS

    def test_quiet_stream_no_assessment(self, rng):
        treated, control = self._streams(rng, effect=0.0)
        assessor = StreamingAssessor(change_index=130)
        for t in range(treated.shape[1]):
            assert assessor.push(treated[:, t], control[:, t]) is None
        assert assessor.assessment is None

    def test_no_control_reports_with_note(self, rng):
        treated, _ = self._streams(rng, effect=6.0)
        assessor = StreamingAssessor(change_index=130)
        outcome = None
        for t in range(treated.shape[1]):
            outcome = outcome or assessor.push(treated[:, t])
        assert outcome is not None
        assert outcome.verdict is Verdict.CAUSED_BY_CHANGE
        assert outcome.notes

    def test_unit_count_change_rejected(self, rng):
        assessor = StreamingAssessor(change_index=10)
        assessor.push([1.0, 2.0], [3.0])
        with pytest.raises(ParameterError):
            assessor.push([1.0], [3.0])
        with pytest.raises(ParameterError):
            assessor.push([1.0, 2.0], [3.0, 4.0])

    def test_empty_treated_rejected(self):
        assessor = StreamingAssessor(change_index=10)
        with pytest.raises(ParameterError):
            assessor.push([])
