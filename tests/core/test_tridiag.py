"""Tests for the QL-iteration tridiagonal eigensolver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tridiag import tridiag_eigh
from repro.exceptions import ParameterError


def dense_from(diag, sub):
    n = len(diag)
    t = np.diag(np.asarray(diag, dtype=float))
    for i in range(n - 1):
        t[i, i + 1] = t[i + 1, i] = sub[i]
    return t


class TestTridiagEigh:
    def test_matches_numpy(self, rng):
        d = rng.normal(size=6)
        e = rng.normal(size=5)
        w, v = tridiag_eigh(d, e)
        w_np, _ = np.linalg.eigh(dense_from(d, e))
        np.testing.assert_allclose(w, w_np, atol=1e-10)

    def test_eigenvectors_satisfy_definition(self, rng):
        d = rng.normal(size=7)
        e = rng.normal(size=6)
        t = dense_from(d, e)
        w, v = tridiag_eigh(d, e)
        for i in range(7):
            np.testing.assert_allclose(t @ v[:, i], w[i] * v[:, i],
                                       atol=1e-9)

    def test_eigenvectors_orthonormal(self, rng):
        d = rng.normal(size=8)
        e = rng.normal(size=7)
        _, v = tridiag_eigh(d, e)
        np.testing.assert_allclose(v.T @ v, np.eye(8), atol=1e-9)

    def test_eigenvalues_ascending(self, rng):
        d = rng.normal(size=9)
        e = rng.normal(size=8)
        w, _ = tridiag_eigh(d, e)
        assert np.all(np.diff(w) >= -1e-12)

    def test_1x1(self):
        w, v = tridiag_eigh([3.0], [])
        assert w[0] == 3.0
        assert v[0, 0] == 1.0

    def test_2x2_analytic(self):
        # [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        w, v = tridiag_eigh([2.0, 2.0], [1.0])
        np.testing.assert_allclose(w, [1.0, 3.0], atol=1e-12)

    def test_diagonal_matrix(self):
        w, v = tridiag_eigh([3.0, 1.0, 2.0], [0.0, 0.0])
        np.testing.assert_allclose(w, [1.0, 2.0, 3.0])
        # Eigenvectors are (permuted) standard basis vectors.
        assert np.allclose(np.abs(v).max(axis=0), 1.0)

    def test_repeated_eigenvalues(self):
        w, v = tridiag_eigh([5.0, 5.0, 5.0], [0.0, 0.0])
        np.testing.assert_allclose(w, [5.0, 5.0, 5.0])
        np.testing.assert_allclose(v.T @ v, np.eye(3), atol=1e-12)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParameterError):
            tridiag_eigh([1.0, 2.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            tridiag_eigh([], [])

    def test_input_not_mutated(self):
        d = np.array([1.0, 2.0, 3.0])
        e = np.array([0.5, 0.5])
        tridiag_eigh(d, e)
        np.testing.assert_array_equal(d, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(e, [0.5, 0.5])

    @given(st.integers(1, 12), st.integers(0, 2 ** 31))
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_property(self, n, seed):
        rng = np.random.default_rng(seed)
        d = rng.normal(size=n)
        e = rng.normal(size=max(n - 1, 0))
        w, v = tridiag_eigh(d, e)
        t = dense_from(d, e)
        w_np = np.linalg.eigvalsh(t)
        np.testing.assert_allclose(w, w_np, atol=1e-8)
        # Reconstruction: V diag(w) V^T == T.
        np.testing.assert_allclose(v @ np.diag(w) @ v.T, t, atol=1e-8)

    @given(st.integers(2, 10), st.integers(0, 2 ** 31),
           st.floats(1e-6, 1e6))
    @settings(max_examples=25, deadline=None)
    def test_scaling_property(self, n, seed, factor):
        """eig(c*T) == c*eig(T)."""
        rng = np.random.default_rng(seed)
        d = rng.normal(size=n)
        e = rng.normal(size=n - 1)
        w1, _ = tridiag_eigh(d, e)
        w2, _ = tridiag_eigh(factor * d, factor * e)
        np.testing.assert_allclose(w2, factor * w1, rtol=1e-6, atol=1e-9)
