"""The batched detect stage: parity, planning, packing, counters.

``detect_mode="batched"`` restructures execution — stacked detect, then
per-item attribution for declared funnel jobs only — but the contract is
that it changes throughput, never results.  These tests pin batched ==
per-item bit-identically (serial and pooled), the batch planner's
grouping rules, the packed-payload round trip and its dedup win on a
fleet whose changes treat several servers, and the batching counters.
"""

import pickle

import numpy as np
import pytest

from repro.engine import (BATCHABLE_DETECTORS, EngineConfig,
                          FleetScenarioSpec, Instrumentation,
                          SyntheticFleetSource, execute_jobs, pack_jobs,
                          plan_detect_batches, reset_shared_cache,
                          spec_for_method, unpack_jobs)
from repro.engine.batching import (BATCHED_BATCHES_METRIC,
                                   BATCHED_CAPACITY_METRIC,
                                   BATCHED_JOBS_METRIC)
from repro.exceptions import EngineError
from repro.obs import ObsContext

#: Multi-treated scenario: every change dark-launches onto >= 2 servers,
#: so per-entity series repeat across a change's jobs (see dedup test).
SPEC = FleetScenarioSpec(n_services=3, n_servers=18, n_changes=3,
                         history_days=1, seed=13)


@pytest.fixture(scope="module")
def mixed_jobs():
    """Batchable (funnel, improved_sst) plus passthrough (cusum) jobs."""
    source = SyntheticFleetSource(SPEC)
    specs = tuple(spec_for_method(m)
                  for m in ("funnel", "improved_sst", "cusum"))
    return list(source.plan_jobs(specs))


@pytest.fixture(autouse=True)
def _cold_cache():
    reset_shared_cache()
    yield
    reset_shared_cache()


def _run(jobs, **config):
    reset_shared_cache()
    return execute_jobs(jobs, config=EngineConfig(**config),
                        instrumentation=Instrumentation())


def _assert_identical(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert left.job_id == right.job_id
        assert left.detector == right.detector
        assert left.outcome == right.outcome
        assert left.verdict == right.verdict
        assert left.did_estimate == right.did_estimate


class TestBatchedParity:
    def test_serial_batched_equals_per_item(self, mixed_jobs):
        per_item = _run(mixed_jobs, workers=0, batch_size=8)
        batched = _run(mixed_jobs, workers=0, batch_size=8,
                       detect_mode="batched")
        _assert_identical(per_item, batched)

    def test_pooled_batched_equals_serial_per_item(self, mixed_jobs):
        per_item = _run(mixed_jobs, workers=0, batch_size=8)
        pooled = _run(mixed_jobs, workers=2, batch_size=8,
                      detect_mode="batched")
        _assert_identical(per_item, pooled)

    def test_batch_size_does_not_matter(self, mixed_jobs):
        small = _run(mixed_jobs, workers=0, batch_size=2,
                     detect_mode="batched")
        large = _run(mixed_jobs, workers=0, batch_size=64,
                     detect_mode="batched")
        _assert_identical(small, large)

    def test_invalid_detect_mode_rejected(self):
        with pytest.raises(EngineError):
            EngineConfig(detect_mode="stacked")


class TestBatchPlanning:
    def test_groups_by_detector_and_length(self, mixed_jobs):
        batches, passthrough = plan_detect_batches(mixed_jobs, batch_size=8)
        batched_positions = [p for b in batches for p in b.positions]
        assert sorted(batched_positions + passthrough) == \
            list(range(len(mixed_jobs)))
        for batch in batches:
            assert batch.size <= 8
            assert batch.spec.name in BATCHABLE_DETECTORS
            assert batch.stack.shape == (batch.size,
                                         batch.stack.shape[1])
            assert batch.stack.flags["C_CONTIGUOUS"]
            for position, row in zip(batch.positions, batch.stack):
                np.testing.assert_array_equal(
                    row, mixed_jobs[position].treated_aggregate)
        for position in passthrough:
            assert mixed_jobs[position].detector.name \
                not in BATCHABLE_DETECTORS

    def test_passthrough_is_exactly_the_baselines(self, mixed_jobs):
        _, passthrough = plan_detect_batches(mixed_jobs, batch_size=8)
        expected = [i for i, job in enumerate(mixed_jobs)
                    if job.detector.name == "cusum"]
        assert passthrough == expected


class TestPackedPayloads:
    def test_round_trip_is_content_identical(self, mixed_jobs):
        packed = pack_jobs(mixed_jobs)
        restored = unpack_jobs(packed)
        assert len(restored) == len(mixed_jobs)
        for original, back in zip(mixed_jobs, restored):
            assert back.job_id == original.job_id
            np.testing.assert_array_equal(back.treated, original.treated)
            for field in ("control", "history"):
                left = getattr(original, field)
                right = getattr(back, field)
                if left is None:
                    assert right is None
                else:
                    np.testing.assert_array_equal(right, left)

    def test_dedup_ships_each_distinct_row_once(self, mixed_jobs):
        """Every change here treats >= 2 servers, so control matrices
        repeat rows across the change's jobs — packing must pickle
        strictly fewer rows than the jobs reference."""
        packed = pack_jobs(mixed_jobs)
        assert 0 < len(packed.rows) < packed.total_rows
        assert len(pickle.dumps(packed)) < len(pickle.dumps(mixed_jobs))

    def test_survives_pickle(self, mixed_jobs):
        packed = pack_jobs(mixed_jobs[:6])
        clone = pickle.loads(pickle.dumps(packed))
        for original, back in zip(mixed_jobs[:6], unpack_jobs(clone)):
            np.testing.assert_array_equal(back.treated, original.treated)


class TestBatchedCounters:
    def _observed(self, jobs, **config):
        reset_shared_cache()
        obs = ObsContext()
        execute_jobs(jobs, config=EngineConfig(**config),
                     instrumentation=Instrumentation(obs=obs))
        snap = obs.metrics.snapshot()["counters"]
        return {name: sum(entry["value"] for entry in doc["values"])
                for name, doc in snap.items()}

    def test_batched_run_counts_batches_jobs_capacity(self, mixed_jobs):
        totals = self._observed(mixed_jobs, workers=0, batch_size=8,
                                detect_mode="batched")
        batchable = sum(1 for job in mixed_jobs
                        if job.detector.name in BATCHABLE_DETECTORS)
        assert totals[BATCHED_JOBS_METRIC] == batchable
        assert totals[BATCHED_BATCHES_METRIC] >= 1
        # Fill ratio: planned capacity bounds the jobs from above.
        assert totals[BATCHED_JOBS_METRIC] <= \
            totals[BATCHED_CAPACITY_METRIC]

    def test_per_item_run_has_no_batched_counters(self, mixed_jobs):
        totals = self._observed(mixed_jobs, workers=0, batch_size=8)
        assert BATCHED_BATCHES_METRIC not in totals
        assert BATCHED_JOBS_METRIC not in totals
