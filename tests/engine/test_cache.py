"""The baseline-stats cache: correctness, LRU recency, hit accounting.

Regression pinned here: eviction used to be FIFO (plain dict, evict the
oldest *insertion*), so under fleet-scale churn a hot baseline that was
inserted early got evicted at the same age as one-shot keys, despite
being re-read constantly.  True LRU refreshes an entry on every hit.
"""

import numpy as np
import pytest

from repro.core.robust import median_and_mad
from repro.engine.cache import BaselineStatsCache


@pytest.fixture
def series():
    rng = np.random.default_rng(3)
    return rng.normal(50.0, 4.0, size=200)


class TestCorrectness:
    def test_stats_match_direct_computation(self, series):
        cache = BaselineStatsCache()
        median, mad = cache.stats("k", series, 80)
        expected = median_and_mad(series[:80])
        assert (median, mad) == (float(expected[0]), float(expected[1]))

    def test_hit_returns_the_cached_tuple(self, series):
        cache = BaselineStatsCache()
        first = cache.stats("k", series, 80)
        second = cache.stats("k", series, 80)
        assert first == second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            BaselineStatsCache(max_entries=0)


class TestLruEviction:
    def test_hit_refreshes_recency(self, series):
        cache = BaselineStatsCache(max_entries=2)
        cache.stats("a", series, 40)
        cache.stats("b", series, 50)
        cache.stats("a", series, 40)     # refresh "a"
        cache.stats("c", series, 60)     # evicts "b", not "a"
        hits = cache.hits
        cache.stats("a", series, 40)
        assert cache.hits == hits + 1    # "a" survived
        cache.stats("b", series, 50)
        assert cache.misses == 4         # "b" was the one evicted

    def test_entries_stay_bounded(self, series):
        cache = BaselineStatsCache(max_entries=8)
        for i in range(50):
            cache.stats(("k", i), series, 40)
        assert cache.info()["entries"] == 8

    def test_hot_key_survives_one_shot_churn(self, series):
        # The fleet-scale access pattern: one baseline re-read on every
        # assessment among a stream of one-shot keys.  Under FIFO the
        # hot entry ages out repeatedly; under LRU it never misses
        # after the first computation.
        cache = BaselineStatsCache(max_entries=4)
        for i in range(100):
            cache.stats("hot", series, 80)
            cache.stats(("one-shot", i), series, 40)
        assert cache.hits == 99
        assert cache.misses == 101       # 1 for hot + 100 one-shots


class TestAccounting:
    def test_counters_snapshot(self, series):
        cache = BaselineStatsCache()
        cache.stats("k", series, 40)
        cache.stats("k", series, 40)
        assert cache.counters() == (1, 1)

    def test_clear_resets_everything(self, series):
        cache = BaselineStatsCache()
        cache.stats("k", series, 40)
        cache.clear()
        assert cache.info() == {"entries": 0, "hits": 0, "misses": 0,
                                "max_entries": cache.max_entries}
