"""Tests for the fleet-scale assessment engine.

The load-bearing property is serial/parallel parity: the executor must
return bit-identical outcomes whatever the worker count or batch size,
because every detector is rebuilt per job with a seed derived from the
job's identity alone.
"""

import pytest

from repro.engine import (AssessmentEngine, AssessmentJob, Detector,
                          DetectorSpec, EngineConfig, FleetScenarioSpec,
                          Instrumentation, ItemOutcome, SyntheticFleetSource,
                          add_hook, build_detector, clear_hooks,
                          detector_names, execute_jobs, job_from_item,
                          job_seed, jobs_from_items, reset_shared_cache,
                          run_job, shared_cache, spec_for_method)
from repro.engine.planner import ENTITY_METRICS
from repro.eval.runner import evaluate_corpus, make_method
from repro.exceptions import EngineError
from repro.synthetic.dataset import CorpusSpec, EvaluationCorpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return list(EvaluationCorpus(CorpusSpec(scale=0.012, seed=99)))


@pytest.fixture(scope="module")
def fleet_source():
    return SyntheticFleetSource(FleetScenarioSpec(
        n_services=4, n_servers=20, n_changes=3, history_days=1, seed=3))


@pytest.fixture(autouse=True)
def _clean_state():
    reset_shared_cache()
    clear_hooks()
    yield
    reset_shared_cache()
    clear_hooks()


class TestRegistry:
    def test_builtin_detectors_registered(self):
        names = detector_names()
        for expected in ("funnel", "improved_sst", "cusum", "mrls", "wow"):
            assert expected in names

    def test_built_detectors_satisfy_protocol(self):
        for name in detector_names():
            detector = build_detector(spec_for_method(name), seed=1)
            assert isinstance(detector, Detector)
            assert detector.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(EngineError):
            build_detector(DetectorSpec.create("prophet"))
        with pytest.raises(EngineError):
            spec_for_method("prophet")

    def test_spec_drops_none_options(self):
        spec = DetectorSpec.create("funnel", funnel_config=None)
        assert spec.options == ()
        assert spec == spec_for_method("funnel")


class TestJobSeed:
    def test_depends_only_on_identity(self, tiny_corpus):
        spec = spec_for_method("cusum")
        job = job_from_item(tiny_corpus[0], spec)
        assert job_seed(job) == job_seed(job)
        other = job_from_item(tiny_corpus[1], spec)
        assert job_seed(job) != job_seed(other)

    def test_differs_across_detectors(self, tiny_corpus):
        a = job_from_item(tiny_corpus[0], spec_for_method("cusum"))
        b = job_from_item(tiny_corpus[0], spec_for_method("funnel"))
        assert job_seed(a) != job_seed(b)


class TestParity:
    """Parallel execution must be bit-identical to serial."""

    def _jobs(self, items, methods=("funnel", "cusum")):
        jobs = []
        for name in methods:
            jobs.extend(jobs_from_items(items, spec_for_method(name)))
        return jobs

    def test_parallel_identical_to_serial(self, tiny_corpus):
        jobs = self._jobs(tiny_corpus[:24])
        serial = execute_jobs(jobs, EngineConfig(workers=0, batch_size=7))
        parallel = execute_jobs(jobs, EngineConfig(workers=2, batch_size=5))
        assert len(serial) == len(parallel) == len(jobs)
        for a, b in zip(serial, parallel):
            assert a.job_id == b.job_id
            assert a.detector == b.detector
            assert a.outcome == b.outcome
            assert a.verdict == b.verdict
            assert a.did_estimate == b.did_estimate

    def test_batch_size_does_not_matter(self, tiny_corpus):
        jobs = self._jobs(tiny_corpus[:12], methods=("funnel",))
        small = execute_jobs(jobs, EngineConfig(workers=0, batch_size=1))
        large = execute_jobs(jobs, EngineConfig(workers=0, batch_size=64))
        assert [r.outcome for r in small] == [r.outcome for r in large]

    def test_evaluate_corpus_parallel_parity(self, tiny_corpus):
        methods = {"funnel": make_method("funnel")}
        serial = evaluate_corpus(tiny_corpus[:24], methods)
        parallel = evaluate_corpus(tiny_corpus[:24], methods, workers=2,
                                   batch_size=4)
        assert serial.strata.keys() == parallel.strata.keys()
        for key, matrix in serial.strata.items():
            other = parallel.strata[key]
            assert (matrix.tp, matrix.tn, matrix.fp, matrix.fn) == \
                (other.tp, other.tn, other.fp, other.fn)

    def test_single_item_path_matches_executor(self, tiny_corpus):
        adapter = make_method("cusum")
        item = tiny_corpus[0]
        via_adapter = adapter(item)
        via_engine = run_job(job_from_item(item, adapter.spec)).outcome
        assert via_adapter == via_engine

    def test_invalid_config(self):
        with pytest.raises(EngineError):
            EngineConfig(workers=-1)
        with pytest.raises(EngineError):
            EngineConfig(batch_size=0)


class TestBaselineCache:
    def test_second_spec_hits_cache(self, tiny_corpus):
        items = tiny_corpus[:6]
        execute_jobs(jobs_from_items(items, spec_for_method("funnel")))
        assert shared_cache().hits == 0
        assert shared_cache().misses == len(items)
        execute_jobs(jobs_from_items(items, spec_for_method("improved_sst")))
        assert shared_cache().hits == len(items)

    def test_cache_does_not_change_outcomes(self, tiny_corpus):
        spec = spec_for_method("funnel")
        items = tiny_corpus[:6]
        cold = execute_jobs(jobs_from_items(items, spec))
        warm = execute_jobs(jobs_from_items(items, spec))
        assert shared_cache().hits > 0
        assert [r.outcome for r in cold] == [r.outcome for r in warm]


class TestInstrumentation:
    def test_stage_totals_recorded(self, tiny_corpus):
        inst = Instrumentation()
        jobs = list(jobs_from_items(tiny_corpus[:8],
                                    spec_for_method("funnel")))
        execute_jobs(jobs, instrumentation=inst)
        snap = inst.snapshot()
        assert snap["counters"]["jobs"] == len(jobs)
        assert "execute" in snap["stages"]
        assert "detect" in snap["stages"]
        assert snap["stages"]["detect"]["items"] == len(jobs)
        assert snap["stages"]["execute"]["seconds"] > 0

    def test_hooks_receive_stage_events(self, tiny_corpus):
        events = []
        add_hook(events.append)
        inst = Instrumentation()
        execute_jobs(jobs_from_items(tiny_corpus[:4],
                                     spec_for_method("improved_sst")),
                     instrumentation=inst)
        stages = {e["stage"] for e in events}
        assert "execute" in stages
        assert all(e["kind"] == "stage" for e in events)


class TestFleetPlanning:
    def test_jobs_cover_impact_sets(self, fleet_source):
        spec = spec_for_method("funnel")
        jobs = list(fleet_source.plan_jobs([spec]))
        assert jobs
        assert len({j.job_id for j in jobs}) == len(jobs)
        for job in jobs:
            assert job.entity_type in ENTITY_METRICS
            assert job.metric in ENTITY_METRICS[job.entity_type]
            assert job.truth_positive is not None
            assert job.baseline_key

    def test_plan_and_fetch_instrumented(self, fleet_source):
        inst = Instrumentation()
        jobs = list(fleet_source.plan_jobs([spec_for_method("funnel")],
                                           instrumentation=inst))
        snap = inst.snapshot()
        assert snap["stages"]["plan"]["calls"] == len(fleet_source.changes)
        assert snap["stages"]["fetch"]["items"] == len(jobs)

    def test_assess_fleet_report(self, fleet_source):
        engine = AssessmentEngine(detectors=("funnel",))
        report = engine.assess_fleet(fleet_source)
        doc = report.as_dict()
        assert doc["jobs"] > 0
        stats = doc["detectors"]["funnel"]
        assert stats["labelled_jobs"] == doc["jobs"]
        # The injected shifts are 8 sigma on clean windows: FUNNEL must
        # recover them essentially perfectly.
        assert stats["precision"] == 1.0
        assert stats["recall"] == 1.0
        assert doc["throughput_jobs_per_second"] > 0

    def test_fleet_windows_deterministic(self):
        spec = FleetScenarioSpec(n_services=4, n_servers=20, n_changes=2,
                                 history_days=1, seed=11)
        a, b = SyntheticFleetSource(spec), SyntheticFleetSource(spec)
        change_a, change_b = a.changes[0], b.changes[0]
        assert change_a.change_id == change_b.change_id
        win_a = a.fetch(change_a, "server", change_a.hostnames[0],
                        "memory_utilization")
        win_b = b.fetch(change_b, "server", change_b.hostnames[0],
                        "memory_utilization")
        assert (win_a.treated == win_b.treated).all()

    def test_bad_scenario_spec(self):
        with pytest.raises(EngineError):
            FleetScenarioSpec(n_changes=0)
        with pytest.raises(EngineError):
            FleetScenarioSpec(impact_fraction=1.5)


class TestJobModel:
    def test_item_outcome_delay(self):
        assert ItemOutcome(True, detection_index=75).delay(60) == 15
        assert ItemOutcome(False).delay(60) is None

    def test_job_is_picklable(self, tiny_corpus):
        import pickle
        job = job_from_item(tiny_corpus[0], spec_for_method("funnel"))
        clone = pickle.loads(pickle.dumps(job))
        assert isinstance(clone, AssessmentJob)
        assert clone.job_id == job.job_id
        assert (clone.treated == job.treated).all()
