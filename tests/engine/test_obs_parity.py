"""Serial vs process-pool observability parity (the worker channel).

Module-level hooks and metric registries are process-local, so a pooled
run would historically drop every worker-side event.  The executor now
routes worker telemetry (spans + metric snapshots) back with the batch
results and re-emits it in the parent — these tests pin the contract:
aggregate counters, histogram counts, span counts and hook event counts
are identical whether the batches ran inline or across a pool.

Gauges and transport counters are deliberately excluded: the
in-flight-batches gauge and the packed-payload row counters only exist
for pooled runs (serial pickles nothing), so parity is defined over the
remaining counters + histograms + spans + hook events.
"""

from collections import Counter as TallyCounter

import pytest

from repro.engine import (AssessmentEngine, EngineConfig, FleetScenarioSpec,
                          Instrumentation, SyntheticFleetSource, add_hook,
                          clear_hooks, execute_jobs, remove_hook,
                          reset_shared_cache, spec_for_method)
from repro.engine.batching import (PACKED_ROWS_METRIC,
                                   PACKED_UNIQUE_ROWS_METRIC)
from repro.engine.executor import INFLIGHT_GAUGE
from repro.obs import ObsContext

#: Pool-transport bookkeeping: present only when batches are pickled.
TRANSPORT_COUNTERS = (PACKED_ROWS_METRIC, PACKED_UNIQUE_ROWS_METRIC)


@pytest.fixture(scope="module")
def fleet_jobs():
    """One funnel job per fleet KPI — baseline keys unique per job, so
    cache hit/miss counters are stable across worker counts."""
    source = SyntheticFleetSource(FleetScenarioSpec(
        n_services=4, n_servers=20, n_changes=3, history_days=1, seed=3))
    return list(source.plan_jobs((spec_for_method("funnel"),),
                                 instrumentation=Instrumentation()))


@pytest.fixture(autouse=True)
def _clean_state():
    reset_shared_cache()
    clear_hooks()
    yield
    reset_shared_cache()
    clear_hooks()


def _observed_run(jobs, workers):
    """Run ``jobs`` with obs + hooks attached, from a cold cache."""
    reset_shared_cache()
    obs = ObsContext()
    instrumentation = Instrumentation(obs=obs)
    events = []
    hook = add_hook(events.append)
    try:
        results = execute_jobs(
            jobs, config=EngineConfig(workers=workers, batch_size=4),
            instrumentation=instrumentation)
    finally:
        remove_hook(hook)
    return results, obs, events


def _counter_values(obs):
    snap = obs.metrics.snapshot()
    return {name: {tuple(sorted(entry["labels"].items())): entry["value"]
                   for entry in doc["values"]}
            for name, doc in snap["counters"].items()
            if name not in TRANSPORT_COUNTERS}


def _histogram_counts(obs):
    """Observation counts per metric/label-set (durations vary run to
    run, so bucket placement and sums are not parity material)."""
    snap = obs.metrics.snapshot()
    return {name: {tuple(sorted(entry["labels"].items())): entry["count"]
                   for entry in doc["values"]}
            for name, doc in snap["histograms"].items()}


def _event_counts(events):
    keys = []
    for event in events:
        if event["kind"] == "stage":
            keys.append(("stage", event["stage"]))
        else:
            keys.append((event["kind"], event.get("name")))
    return TallyCounter(keys)


class TestWorkerChannelParity:
    def test_metrics_spans_and_hook_events_match(self, fleet_jobs):
        serial_results, serial_obs, serial_events = \
            _observed_run(fleet_jobs, workers=0)
        pooled_results, pooled_obs, pooled_events = \
            _observed_run(fleet_jobs, workers=2)

        # Outcomes first: obs must not perturb the engine's parity.
        assert [r.outcome for r in serial_results] == \
            [r.outcome for r in pooled_results]

        # Aggregate counters — jobs, positives, cache hits/misses.
        assert _counter_values(serial_obs) == _counter_values(pooled_obs)
        jobs_total = _counter_values(serial_obs)[
            "repro_engine_jobs_total"]
        assert sum(jobs_total.values()) == len(fleet_jobs)

        # Histogram observation counts (detect-stage latency per job).
        assert _histogram_counts(serial_obs) == \
            _histogram_counts(pooled_obs)

        # Same span tree size and composition.
        assert serial_obs.span_count == pooled_obs.span_count
        serial_names = TallyCounter(s.name for s in serial_obs.spans())
        pooled_names = TallyCounter(s.name for s in pooled_obs.spans())
        assert serial_names == pooled_names
        assert serial_names["job"] == len(fleet_jobs)
        assert serial_names["execute"] == 1

        # The satellite fix itself: hooks see the same events either way.
        assert _event_counts(serial_events) == _event_counts(pooled_events)
        assert _event_counts(serial_events)[("span", "job")] == \
            len(fleet_jobs)

    def test_worker_spans_reparent_under_execute(self, fleet_jobs):
        _, obs, _ = _observed_run(fleet_jobs[:8], workers=2)
        spans = obs.spans()
        execute = [s for s in spans if s.name == "execute"]
        assert len(execute) == 1
        batches = [s for s in spans if s.name == "batch"]
        assert batches
        assert {s.parent_id for s in batches} == {execute[0].span_id}
        assert {s.trace_id for s in spans} == {obs.tracer.trace_id}

    def test_inflight_gauge_is_pooled_only(self, fleet_jobs):
        _, serial_obs, _ = _observed_run(fleet_jobs[:8], workers=0)
        _, pooled_obs, _ = _observed_run(fleet_jobs[:8], workers=2)
        assert INFLIGHT_GAUGE not in serial_obs.metrics.snapshot()["gauges"]
        assert pooled_obs.metrics.gauge(INFLIGHT_GAUGE).value() >= 1

    def test_packed_counters_are_pooled_only(self, fleet_jobs):
        _, serial_obs, _ = _observed_run(fleet_jobs[:8], workers=0)
        _, pooled_obs, _ = _observed_run(fleet_jobs[:8], workers=2)
        serial_names = serial_obs.metrics.snapshot()["counters"]
        for name in TRANSPORT_COUNTERS:
            assert name not in serial_names
        referenced = pooled_obs.metrics.counter(PACKED_ROWS_METRIC).value()
        pickled = pooled_obs.metrics.counter(
            PACKED_UNIQUE_ROWS_METRIC).value()
        # This scenario treats one server per change, so nothing repeats
        # within a batch — but packing must never pickle more than the
        # jobs reference.  (The dedup win itself is pinned on a
        # multi-treated-server scenario in test_batched.py.)
        assert 0 < pickled <= referenced

    def test_outcomes_identical_with_obs_off(self, fleet_jobs):
        reset_shared_cache()
        plain = execute_jobs(fleet_jobs,
                             config=EngineConfig(workers=0, batch_size=4))
        observed, _, _ = _observed_run(fleet_jobs, workers=0)
        for a, b in zip(plain, observed):
            assert a.outcome == b.outcome
            assert a.verdict == b.verdict
            assert a.did_estimate == b.did_estimate


class TestEngineObsSummary:
    def test_report_carries_obs_summary(self):
        source = SyntheticFleetSource(FleetScenarioSpec(
            n_services=2, n_servers=8, n_changes=2, history_days=1, seed=3))
        obs = ObsContext()
        engine = AssessmentEngine(detectors=("funnel",), obs=obs)
        report = engine.assess_fleet(source)
        doc = report.as_dict()
        assert doc["obs"]["trace_id"] == obs.tracer.trace_id
        assert doc["obs"]["span_count"] == obs.span_count > 0
        assert [s.name for s in obs.spans()][-1] == "assess_fleet"

    def test_report_omits_obs_when_unobserved(self):
        source = SyntheticFleetSource(FleetScenarioSpec(
            n_services=2, n_servers=8, n_changes=2, history_days=1, seed=3))
        report = AssessmentEngine(detectors=("funnel",)).assess_fleet(source)
        assert "obs" not in report.as_dict()
