"""Tests for the evaluation metrics (confusion, delay, cost)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.confusion import ConfusionMatrix
from repro.eval.cost import CostReport, cores_for_kpis, time_callable
from repro.eval.delay import DelayDistribution, ccdf
from repro.exceptions import EvaluationError


class TestConfusionMatrix:
    def test_record_all_quadrants(self):
        m = ConfusionMatrix()
        m.record(True, True)       # TP
        m.record(True, False)      # FP
        m.record(False, True)      # FN
        m.record(False, False)     # TN
        assert (m.tp, m.fp, m.fn, m.tn) == (1, 1, 1, 1)
        assert m.accuracy == 0.5
        assert m.precision == 0.5
        assert m.recall == 0.5
        assert m.tnr == 0.5

    def test_paper_metric_definitions(self):
        m = ConfusionMatrix(tp=90, tn=900, fp=10, fn=10)
        assert m.precision == pytest.approx(0.9)
        assert m.recall == pytest.approx(0.9)
        assert m.tnr == pytest.approx(900 / 910)
        assert m.accuracy == pytest.approx(990 / 1010)

    def test_nan_when_denominator_empty(self):
        m = ConfusionMatrix(tn=10)
        assert math.isnan(m.precision)
        assert math.isnan(m.recall)
        assert m.tnr == 1.0

    def test_addition(self):
        total = ConfusionMatrix(tp=1) + ConfusionMatrix(fp=2)
        assert total.tp == 1 and total.fp == 2

    def test_scaling_matches_paper_synthesis(self):
        """Scaling by 86 reproduces the section 4.2.1 construction."""
        clean = ConfusionMatrix(tn=70, fp=2)
        scaled = clean.scaled(86)
        assert scaled.tn == 70 * 86
        assert scaled.fp == 2 * 86
        assert scaled.tnr == pytest.approx(clean.tnr)

    def test_negative_counts_rejected(self):
        with pytest.raises(EvaluationError):
            ConfusionMatrix(tp=-1)
        with pytest.raises(EvaluationError):
            ConfusionMatrix().scaled(-2)

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100),
           st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_rates_bounded_property(self, tp, tn, fp, fn):
        m = ConfusionMatrix(tp=tp, tn=tn, fp=fp, fn=fn)
        for value in (m.precision, m.recall, m.tnr, m.accuracy):
            assert math.isnan(value) or 0.0 <= value <= 1.0

    def test_as_row(self):
        row = ConfusionMatrix(tp=1, tn=1).as_row()
        assert set(row) == {"total", "precision", "recall", "tnr",
                            "accuracy"}


class TestDelay:
    def test_median_and_percentiles(self):
        d = DelayDistribution("m")
        for v in (5, 10, 15, 20, 25):
            d.record(v)
        assert d.median == 15
        assert d.mean == 15
        assert d.percentile(100) == 25

    def test_negative_delay_rejected(self):
        with pytest.raises(EvaluationError):
            DelayDistribution("m").record(-1)

    def test_empty_stats_nan(self):
        d = DelayDistribution("m")
        assert math.isnan(d.median)

    def test_reduction_vs(self):
        """The paper's headline: FUNNEL's median 13.2 is 38.02% below
        MRLS's 21.3 and 64.99% below CUSUM's 37.7."""
        funnel = DelayDistribution("funnel", [13.2])
        mrls = DelayDistribution("mrls", [21.3])
        cusum = DelayDistribution("cusum", [37.7])
        assert funnel.reduction_vs(mrls) == pytest.approx(38.02, abs=0.1)
        assert funnel.reduction_vs(cusum) == pytest.approx(64.99, abs=0.1)

    def test_ccdf_monotone_decreasing(self):
        grid, fractions = ccdf([1, 5, 5, 20, 40])
        assert np.all(np.diff(fractions) <= 0)
        assert fractions[0] <= 100.0

    def test_ccdf_values(self):
        grid, fractions = ccdf([10, 20, 30], grid=[0, 15, 25, 35])
        np.testing.assert_allclose(fractions,
                                   [100.0, 200 / 3.0, 100 / 3.0, 0.0])

    def test_ccdf_empty_raises(self):
        with pytest.raises(EvaluationError):
            ccdf([])


class TestCost:
    def test_cores_formula_matches_table2(self):
        """The paper's own Table 2 rows validate the capacity formula:
        401.8 us/window -> 7 cores, 1.846 ms -> 31 cores for 1M KPIs."""
        assert cores_for_kpis(401.8e-6) == 7
        assert cores_for_kpis(1.846e-3) == 31
        # MRLS at 2.852 s/window lands within rounding of the paper's
        # 47526 (they rounded the per-window time before scaling).
        assert abs(cores_for_kpis(2.852) - 47526) < 20

    def test_cores_ceil(self):
        # 1M KPIs x 60us = 60 s of work per 60 s interval: exactly 1 core.
        assert cores_for_kpis(60e-6) == 1
        # Any more and a second core is needed (ceiling, not rounding).
        assert cores_for_kpis(60.1e-6) == 2

    def test_invalid_runtime(self):
        with pytest.raises(EvaluationError):
            cores_for_kpis(0.0)

    def test_time_callable(self):
        report = time_callable(lambda: 10, min_seconds=0.01)
        assert report.windows_timed >= 10
        assert report.seconds_per_window > 0

    def test_time_callable_zero_windows(self):
        with pytest.raises(EvaluationError):
            time_callable(lambda: 0, min_seconds=0.01, max_rounds=3)

    def test_cost_report_units(self):
        report = CostReport("m", seconds_per_window=4e-4, windows_timed=10)
        assert report.microseconds_per_window == pytest.approx(400.0)
        assert report.cores_for() == pytest.approx(
            math.ceil(1e6 * 4e-4 / 60.0))
