"""Tests for ROC curves and report rendering."""

import numpy as np
import pytest

from repro.eval.calibrate import ItemStatistic
from repro.eval.cost import CostReport
from repro.eval.report import (format_percent, format_table, render_ascii_series,
                               render_ccdf, render_table1, render_table2)
from repro.eval.roc import roc_curve
from repro.exceptions import EvaluationError


def stat(value, positive, weight=1.0):
    return ItemStatistic(statistic=value, positive=positive, weight=weight)


class TestRocCurve:
    def test_perfect_separation(self):
        stats = [stat(10.0, True), stat(9.0, True),
                 stat(1.0, False), stat(0.5, False)]
        curve = roc_curve(stats)
        assert curve.auc == pytest.approx(1.0)
        threshold, fpr, tpr = curve.operating_point(0.99)
        assert tpr == 1.0 and fpr == 0.0
        assert 1.0 <= threshold <= 10.0

    def test_random_statistic_auc_half(self, rng):
        stats = [stat(float(rng.normal()), bool(i % 2))
                 for i in range(2000)]
        curve = roc_curve(stats)
        assert curve.auc == pytest.approx(0.5, abs=0.05)

    def test_monotone_axes(self, rng):
        stats = [stat(float(rng.normal() + (2.0 if i % 3 == 0 else 0.0)),
                      i % 3 == 0) for i in range(300)]
        curve = roc_curve(stats)
        assert np.all(np.diff(curve.fpr) >= 0)
        assert np.all(np.diff(curve.tpr) >= 0)
        assert curve.fpr[0] == 0.0 and curve.tpr[0] == 0.0
        assert curve.fpr[-1] == pytest.approx(1.0)
        assert curve.tpr[-1] == pytest.approx(1.0)

    def test_weights_shift_fpr(self):
        # One heavy negative FP between the positives drags FPR up fast.
        stats = [stat(10.0, True), stat(5.0, False, weight=86.0),
                 stat(4.0, True), stat(1.0, False)]
        curve = roc_curve(stats)
        # At threshold between 4 and 5, TPR=0.5 but FPR = 86/87.
        idx = np.where(curve.tpr >= 0.5)[0]
        assert curve.fpr[idx[1]] == pytest.approx(86 / 87.0)

    def test_single_class_rejected(self):
        with pytest.raises(EvaluationError):
            roc_curve([stat(1.0, True)])
        with pytest.raises(EvaluationError):
            roc_curve([])


class TestReportRendering:
    def test_format_percent(self):
        assert format_percent(0.9821).strip() == "98.21%"
        assert format_percent(float("nan")).strip() == "n/a"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table1(self):
        rows = [{"method": "funnel", "type": "seasonal", "total": 100,
                 "precision": 1.0, "recall": 0.5, "tnr": 0.99,
                 "accuracy": 0.991}]
        out = render_table1(rows)
        assert "funnel" in out and "99.10%" in out

    def test_render_table2(self):
        reports = {
            "funnel": CostReport("funnel", 25e-6, 100),
            "cusum": CostReport("cusum", 1.2e-3, 100),
            "mrls": CostReport("mrls", 2.5, 100),
        }
        out = render_table2(reports)
        assert "25.0 us" in out
        assert "1.200 ms" in out
        assert "2.500 s" in out

    def test_render_ccdf(self):
        curves = {"funnel": (np.arange(0.0, 61.0),
                             np.linspace(100, 0, 61))}
        out = render_ccdf(curves)
        assert "funnel" in out
        assert "0 min" in out and "60 min" in out

    def test_render_ascii_series_shape(self):
        out = render_ascii_series(np.sin(np.linspace(0, 6, 200)),
                                  height=8, title="wave")
        lines = out.splitlines()
        assert lines[0] == "wave"
        assert len(lines) == 9
        assert any("*" in line for line in lines[1:])

    def test_render_ascii_constant(self):
        out = render_ascii_series(np.ones(10))
        assert "*" in out

    def test_render_ascii_empty(self):
        assert "empty" in render_ascii_series([])


class TestCombineChanges:
    def test_union_and_earliest(self):
        from repro.changes.change import SoftwareChange, combine_changes
        from repro.types import ChangeKind
        a = SoftwareChange("c1", ChangeKind.CONFIG_CHANGE, "svc.a",
                           ("h1", "h2"), 100, config_scope="service")
        b = SoftwareChange("c2", ChangeKind.SOFTWARE_UPGRADE, "svc.a",
                           ("h2", "h3"), 40)
        combined = combine_changes((a, b))
        assert combined.hostnames == ("h1", "h2", "h3")
        assert combined.at_time == 40
        assert combined.kind is ChangeKind.SOFTWARE_UPGRADE

    def test_cross_service_rejected(self):
        from repro.changes.change import SoftwareChange, combine_changes
        from repro.exceptions import ChangeLogError
        from repro.types import ChangeKind
        a = SoftwareChange("c1", ChangeKind.CONFIG_CHANGE, "svc.a",
                           ("h1",), 0, config_scope="service")
        b = SoftwareChange("c2", ChangeKind.CONFIG_CHANGE, "svc.b",
                           ("h2",), 0, config_scope="service")
        with pytest.raises(ChangeLogError):
            combine_changes((a, b))

    def test_empty_rejected(self):
        from repro.changes.change import combine_changes
        from repro.exceptions import ChangeLogError
        with pytest.raises(ChangeLogError):
            combine_changes(())
