"""Tests for the experiment runner and threshold calibration."""

import pytest

from repro.eval.calibrate import (ItemStatistic, calibrate_baseline,
                                  collect_statistics, pick_threshold,
                                  sweep_threshold)
from repro.eval.confusion import ConfusionMatrix
from repro.eval.runner import (CLEAN_SCALE_FACTOR, METHOD_NAMES,
                               ItemOutcome, evaluate_corpus, make_method)
from repro.exceptions import EvaluationError
from repro.synthetic.dataset import CorpusSpec, EvaluationCorpus


@pytest.fixture(scope="module")
def tiny_corpus():
    return list(EvaluationCorpus(CorpusSpec(scale=0.012, seed=99)))


class TestItemOutcome:
    def test_delay(self):
        outcome = ItemOutcome(positive=True, detection_index=75)
        assert outcome.delay(truth_start=60) == 15
        assert outcome.delay(truth_start=80) == 0

    def test_no_detection_no_delay(self):
        assert ItemOutcome(positive=False).delay(60) is None


class TestMakeMethod:
    def test_all_methods_constructible(self):
        for name in METHOD_NAMES:
            assert callable(make_method(name))

    def test_unknown_method(self):
        with pytest.raises(EvaluationError):
            make_method("prophet")

    def test_funnel_adapter_on_item(self, tiny_corpus):
        adapter = make_method("funnel")
        outcome = adapter(tiny_corpus[0])
        assert isinstance(outcome.positive, bool)


class TestEvaluateCorpus:
    def test_funnel_beats_improved_sst_on_accuracy(self, tiny_corpus):
        methods = {"funnel": make_method("funnel"),
                   "improved_sst": make_method("improved_sst")}
        result = evaluate_corpus(tiny_corpus, methods)
        funnel = result.overall("funnel")
        sst = result.overall("improved_sst")
        assert funnel.accuracy >= sst.accuracy

    def test_strata_recorded_per_half(self, tiny_corpus):
        result = evaluate_corpus(tiny_corpus,
                                 {"funnel": make_method("funnel")})
        halves = {key[2] for key in result.strata}
        assert halves == {"inducing", "clean"}

    def test_synthesis_scales_clean_half(self, tiny_corpus):
        result = evaluate_corpus(tiny_corpus,
                                 {"funnel": make_method("funnel")})
        raw_clean = ConfusionMatrix()
        for (method, char, half), m in result.strata.items():
            if half == "clean":
                raw_clean = raw_clean + m
        synthesized_total = sum(
            result.synthesized("funnel", c).total
            for c in ("seasonal", "stationary", "variable"))
        raw_total = sum(m.total for m in result.strata.values())
        assert synthesized_total == pytest.approx(
            raw_total + (CLEAN_SCALE_FACTOR - 1) * raw_clean.total)

    def test_table1_rows_complete(self, tiny_corpus):
        result = evaluate_corpus(tiny_corpus,
                                 {"funnel": make_method("funnel")})
        rows = result.table1(methods=["funnel"])
        assert len(rows) == 3
        assert {row["type"] for row in rows} == {"seasonal", "stationary",
                                                 "variable"}

    def test_mrls_stride_rescales(self, tiny_corpus):
        result = evaluate_corpus(
            tiny_corpus, {"mrls": make_method("mrls")}, mrls_stride=3)
        total = result.overall("mrls").total
        # Rescaled totals approximate the full corpus (within stride
        # granularity after the x86 synthesis).
        assert total > 0

    def test_invalid_stride(self, tiny_corpus):
        with pytest.raises(EvaluationError):
            evaluate_corpus(tiny_corpus, {}, mrls_stride=0)

    def test_progress_callback(self, tiny_corpus):
        seen = []
        evaluate_corpus(tiny_corpus[:3],
                        {"funnel": make_method("funnel")},
                        progress=seen.append)
        assert seen == [0, 1, 2]


class TestCalibration:
    def test_sweep_counts(self):
        stats = [
            ItemStatistic(statistic=5.0, positive=True, weight=1.0),
            ItemStatistic(statistic=1.0, positive=False, weight=86.0),
        ]
        sweep = sweep_threshold(stats, [0.5, 3.0, 10.0])
        # At 0.5 both fire: TP=1, FP=86 -> accuracy 1/87.
        assert sweep[0][1] == pytest.approx(1 / 87)
        # At 3.0 only the positive fires: perfect.
        assert sweep[1][1] == pytest.approx(1.0)
        assert sweep[1][2] == pytest.approx(1.0)
        # At 10 nothing fires: accuracy 86/87, recall 0.
        assert sweep[2][1] == pytest.approx(86 / 87)
        assert sweep[2][2] == 0.0

    def test_pick_threshold_honours_recall_floor(self):
        sweep = [(1.0, 0.6, 1.0), (2.0, 0.9, 0.9), (3.0, 0.99, 0.1)]
        threshold, accuracy = pick_threshold(sweep, recall_floor=0.8)
        assert threshold == 2.0
        # Without a qualifying recall the unconstrained optimum wins.
        threshold, _ = pick_threshold(sweep, recall_floor=2.0)
        assert threshold == 3.0

    def test_collect_statistics_weights(self, tiny_corpus):
        stats = collect_statistics(tiny_corpus, lambda item: 1.0)
        weights = {s.weight for s in stats}
        assert weights == {1.0, CLEAN_SCALE_FACTOR}

    def test_collect_statistics_stride(self, tiny_corpus):
        stats = collect_statistics(tiny_corpus, lambda item: 1.0, stride=2)
        assert len(stats) == (len(tiny_corpus) + 1) // 2
        assert all(s.weight in (2.0, 2.0 * CLEAN_SCALE_FACTOR)
                   for s in stats)

    def test_calibrate_cusum_runs(self, tiny_corpus):
        result = calibrate_baseline("cusum", tiny_corpus,
                                    thresholds=[4.0, 16.0, 64.0])
        assert result.method == "cusum"
        assert result.threshold in (4.0, 16.0, 64.0)
        assert 0.0 <= result.accuracy <= 1.0

    def test_calibrate_unknown_method(self, tiny_corpus):
        with pytest.raises(EvaluationError):
            calibrate_baseline("funnel", tiny_corpus)

    def test_empty_items_raise(self):
        with pytest.raises(EvaluationError):
            collect_statistics([], lambda item: 1.0)
