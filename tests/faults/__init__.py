"""Tests for the fault-injection harness (plan DSL + injectors)."""
