"""The fault injectors: ingest holds, push corruption, flaky history."""

from types import SimpleNamespace

import pytest

from repro.exceptions import TelemetryError
from repro.faults import (DELAY, DROP, DUPLICATE, FAULTS_INJECTED_METRIC,
                          HISTORY_ERROR, REORDER, SILENCE, FaultPlan,
                          FaultRule, FaultyHistoryProvider, FaultyMetricStore)
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.kpi import KpiKey
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries

KEY = KpiKey("server", "web-1", "memory_utilization")


def frag(start, *values):
    return TimeSeries(start, 60, list(values))


def faulty(*rules, metrics=None):
    return FaultyMetricStore(MetricStore(), FaultPlan(rules=tuple(rules)),
                             metrics=metrics)


class TestIngestFaults:
    def test_delay_holds_until_virtual_time_matures(self):
        store = faulty(FaultRule(DELAY, delay_bins=2))
        store.append(KEY, frag(0, 1.0))
        assert KEY not in store
        assert store.pending_fragments() == 1
        store.advance(120)
        assert KEY not in store          # releases at 60 + 2*60 = 180
        store.advance(180)
        assert store.series(KEY).values.tolist() == [1.0]
        assert store.pending_fragments() == 0

    def test_unfaulted_fragment_cannot_overtake_held_head(self):
        # Only the first fragment (end == 60) is delayed; the second has
        # no fault of its own but must queue behind the held head so the
        # durable store stays contiguous.
        store = faulty(FaultRule(DELAY, delay_bins=2, window=(60, 61)))
        store.append(KEY, frag(0, 1.0))
        store.append(KEY, frag(60, 2.0))
        store.advance(120)
        assert KEY not in store
        store.advance(180)
        assert store.series(KEY).values.tolist() == [1.0, 2.0]

    def test_silence_window_releases_at_its_end(self):
        store = faulty(FaultRule(SILENCE, window=(0, 300)))
        store.append(KEY, frag(0, 1.0))
        store.advance(299)
        assert KEY not in store
        store.advance(300)
        assert KEY in store

    def test_flush_all_drains_pending_ingest(self):
        store = faulty(FaultRule(DELAY, delay_bins=10))
        store.append(KEY, frag(0, 1.0))
        store.flush_all()
        assert store.series(KEY).values.tolist() == [1.0]
        assert store.pending_fragments() == 0

    def test_reads_pass_through_to_the_inner_store(self):
        store = faulty()
        store.append(KEY, frag(0, 1.0, 2.0))
        assert store.bin_seconds == 60
        assert store.keys() == [KEY]
        assert store.maybe_series(KEY).values.tolist() == [1.0, 2.0]
        assert store.range(KEY, 60, 120).values.tolist() == [2.0]
        assert store.window_matrix([KEY], 0, 120).shape == (1, 2)
        assert store.subscription_count() == 0

    def test_hold_counter(self):
        metrics = MetricsRegistry()
        store = faulty(FaultRule(DELAY, delay_bins=1), metrics=metrics)
        store.append(KEY, frag(0, 1.0))
        counter = metrics.counter(FAULTS_INJECTED_METRIC)
        assert counter.value(kind="hold") == 1


class TestPushFaults:
    def subscribe(self, store):
        got = []
        store.subscribe([KEY], lambda key, f: got.append(f.start))
        return got

    def test_drop_loses_the_push_but_not_the_store(self):
        store = faulty(FaultRule(DROP, window=(0, 60)))
        got = self.subscribe(store)
        store.append(KEY, frag(0, 1.0))
        store.append(KEY, frag(60, 2.0))
        assert got == [60]
        assert store.series(KEY).values.tolist() == [1.0, 2.0]

    def test_duplicate_delivers_twice(self):
        store = faulty(FaultRule(DUPLICATE, window=(60, 120)))
        got = self.subscribe(store)
        for start, value in ((0, 1.0), (60, 2.0), (120, 3.0)):
            store.append(KEY, frag(start, value))
        assert got == [0, 60, 60, 120]

    def test_reorder_swaps_with_the_next_push(self):
        store = faulty(FaultRule(REORDER, window=(0, 60)))
        got = self.subscribe(store)
        for start, value in ((0, 1.0), (60, 2.0), (120, 3.0)):
            store.append(KEY, frag(start, value))
        assert got == [60, 0, 120]
        # the durable column is untouched by the push swap
        assert store.series(KEY).values.tolist() == [1.0, 2.0, 3.0]

    def test_flush_all_delivers_swap_held_pushes(self):
        store = faulty(FaultRule(REORDER, window=(120, 180)))
        got = self.subscribe(store)
        for start, value in ((0, 1.0), (60, 2.0), (120, 3.0)):
            store.append(KEY, frag(start, value))
        assert got == [0, 60]            # the last push is swap-held
        store.flush_all()
        assert got == [0, 60, 120]

    def test_cancelled_subscription_is_not_flushed(self):
        store = faulty(FaultRule(REORDER, window=(0, 60)))
        got = []
        sub = store.subscribe([KEY], lambda key, f: got.append(f.start))
        store.append(KEY, frag(0, 1.0))
        sub.cancel()
        store.flush_all()
        assert got == []

    def test_push_fault_counters(self):
        metrics = MetricsRegistry()
        store = faulty(FaultRule(DROP, window=(0, 60)),
                       FaultRule(DUPLICATE, window=(60, 120)),
                       metrics=metrics)
        self.subscribe(store)
        store.append(KEY, frag(0, 1.0))
        store.append(KEY, frag(60, 2.0))
        counter = metrics.counter(FAULTS_INJECTED_METRIC)
        assert counter.value(kind="drop") == 1
        assert counter.value(kind="duplicate") == 1


class TestHistoryFaults:
    CHANGE = SimpleNamespace(change_id="chg-0001")

    def provider(self, error_attempts, inner):
        plan = FaultPlan(rules=(FaultRule(
            HISTORY_ERROR, error_attempts=error_attempts),))
        return FaultyHistoryProvider(inner, plan)

    def test_leading_failures_then_heal(self):
        rows = object()
        calls = []

        def inner(change, etype, entity, metric):
            calls.append(entity)
            return rows

        provider = self.provider(2, inner)
        for _ in range(2):
            with pytest.raises(TelemetryError):
                provider(self.CHANGE, "server", "web-1", "cpu")
        assert provider(self.CHANGE, "server", "web-1", "cpu") is rows
        assert calls == ["web-1"]        # inner only reached once healed

    def test_attempts_are_tracked_per_item(self):
        provider = self.provider(1, lambda *a: "ok")
        with pytest.raises(TelemetryError):
            provider(self.CHANGE, "server", "web-1", "cpu")
        # a different KPI has its own leading failure
        with pytest.raises(TelemetryError):
            provider(self.CHANGE, "server", "web-2", "cpu")
        assert provider(self.CHANGE, "server", "web-1", "cpu") == "ok"

    def test_none_inner_heals_to_none(self):
        provider = self.provider(1, None)
        with pytest.raises(TelemetryError):
            provider(self.CHANGE, "server", "web-1", "cpu")
        assert provider(self.CHANGE, "server", "web-1", "cpu") is None

    def test_no_matching_rule_passes_straight_through(self):
        provider = FaultyHistoryProvider(lambda *a: "rows", FaultPlan())
        assert provider(self.CHANGE, "server", "web-1", "cpu") == "rows"

    def test_injected_failures_are_counted(self):
        metrics = MetricsRegistry()
        plan = FaultPlan(rules=(FaultRule(HISTORY_ERROR,
                                          error_attempts=2),))
        provider = FaultyHistoryProvider(None, plan, metrics=metrics)
        for _ in range(2):
            with pytest.raises(TelemetryError):
                provider(self.CHANGE, "server", "web-1", "cpu")
        provider(self.CHANGE, "server", "web-1", "cpu")
        counter = metrics.counter(FAULTS_INJECTED_METRIC)
        assert counter.value(kind="history_error") == 2
