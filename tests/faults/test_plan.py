"""The fault-plan DSL: validation, matching, determinism, presets."""

import pytest

from repro.exceptions import ParameterError
from repro.faults import (DELAY, DROP, DUPLICATE, HISTORY_ERROR, PRESET_NAMES,
                          REORDER, SILENCE, FaultPlan, FaultRule, preset_plan)
from repro.faults.plan import DELIVER


class TestFaultRuleValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ParameterError):
            FaultRule("corrupt")

    @pytest.mark.parametrize("probability", [-0.1, 1.5])
    def test_rejects_probability_outside_unit_interval(self, probability):
        with pytest.raises(ParameterError):
            FaultRule(DROP, probability=probability)

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ParameterError):
            FaultRule(DELAY, delay_bins=0)

    def test_rejects_nonpositive_error_attempts(self):
        with pytest.raises(ParameterError):
            FaultRule(HISTORY_ERROR, error_attempts=0)

    def test_silence_requires_a_window(self):
        with pytest.raises(ParameterError):
            FaultRule(SILENCE)

    def test_rejects_empty_window(self):
        with pytest.raises(ParameterError):
            FaultRule(DROP, window=(300, 300))


class TestFaultRuleMatching:
    def test_window_is_half_open(self):
        rule = FaultRule(DROP, window=(60, 180))
        assert not rule.matches("server:web-1:cpu", 59)
        assert rule.matches("server:web-1:cpu", 60)
        assert rule.matches("server:web-1:cpu", 179)
        assert not rule.matches("server:web-1:cpu", 180)

    def test_key_glob_scopes_the_rule(self):
        rule = FaultRule(DROP, key_glob="server:web-*:*")
        assert rule.matches("server:web-1:cpu", 0)
        assert not rule.matches("server:db-1:cpu", 0)
        assert not rule.matches("service:web-1:cpu", 0)

    def test_no_window_no_glob_matches_everything(self):
        rule = FaultRule(DROP)
        assert rule.matches("anything:at:all", 10 ** 9)

    def test_dict_roundtrip(self):
        rule = FaultRule(DELAY, probability=0.25, delay_bins=3,
                         window=(0, 600), key_glob="server:*")
        assert FaultRule.from_dict(rule.as_dict()) == rule


class TestFaultPlanDeterminism:
    def test_roll_is_a_pure_function(self):
        plan = FaultPlan(seed=7)
        first = plan._roll("drop", "server:web-1:cpu", 600)
        second = plan._roll("drop", "server:web-1:cpu", 600)
        assert first == second
        assert 0.0 <= first < 1.0

    def test_equal_plans_make_equal_decisions(self):
        keys = ["server:web-%d:cpu" % i for i in range(64)]
        one = FaultPlan(seed=3, rules=(FaultRule(DROP, probability=0.5),))
        two = FaultPlan(seed=3, rules=(FaultRule(DROP, probability=0.5),))
        assert [one.push_action(k, 0) for k in keys] == \
            [two.push_action(k, 0) for k in keys]

    def test_seed_changes_decisions(self):
        keys = ["server:web-%d:cpu" % i for i in range(64)]
        rules = (FaultRule(DROP, probability=0.5),)
        a = [FaultPlan(seed=0, rules=rules).push_action(k, 0) for k in keys]
        b = [FaultPlan(seed=1, rules=rules).push_action(k, 0) for k in keys]
        assert a != b

    def test_probability_is_roughly_honoured(self):
        plan = FaultPlan(seed=5, rules=(FaultRule(DROP, probability=0.25),))
        actions = [plan.push_action("server:web-%d:cpu" % i, 0)
                   for i in range(400)]
        dropped = actions.count(DROP)
        assert 50 < dropped < 150          # ~100 expected


class TestFaultPlanDecisions:
    def test_push_action_defaults_to_deliver(self):
        assert FaultPlan().push_action("server:web-1:cpu", 0) == DELIVER

    def test_first_matching_push_rule_wins(self):
        plan = FaultPlan(rules=(FaultRule(DROP), FaultRule(DUPLICATE)))
        assert plan.push_action("server:web-1:cpu", 0) == DROP

    def test_push_rules_respect_windows(self):
        plan = FaultPlan(rules=(FaultRule(REORDER, window=(60, 120)),))
        assert plan.push_action("k", 0) == DELIVER
        assert plan.push_action("k", 60) == REORDER

    def test_ingest_release_for_delay(self):
        plan = FaultPlan(rules=(FaultRule(DELAY, delay_bins=2),))
        # A one-bin fragment [0, 60) arriving at its end is released two
        # collection intervals later.
        assert plan.ingest_release("k", 0, 60) == 180

    def test_ingest_release_for_silence(self):
        plan = FaultPlan(rules=(FaultRule(SILENCE, window=(0, 300)),))
        assert plan.ingest_release("k", 0, 60) == 300
        assert plan.ingest_release("k", 300, 360) is None

    def test_worst_matching_ingest_rule_wins(self):
        plan = FaultPlan(rules=(FaultRule(DELAY, delay_bins=1),
                                FaultRule(SILENCE, window=(0, 600))))
        assert plan.ingest_release("k", 0, 60) == 600

    def test_no_ingest_fault_returns_none(self):
        assert FaultPlan().ingest_release("k", 0, 60) is None

    def test_history_failures(self):
        plan = FaultPlan(rules=(
            FaultRule(HISTORY_ERROR, error_attempts=3),))
        assert plan.history_failures("chg-1", "server:web-1:cpu") == 3
        assert FaultPlan().history_failures("chg-1", "k") == 0

    def test_history_failures_respect_key_glob(self):
        plan = FaultPlan(rules=(FaultRule(
            HISTORY_ERROR, error_attempts=2, key_glob="service:*"),))
        assert plan.history_failures("chg-1", "service:api:latency") == 2
        assert plan.history_failures("chg-1", "server:web-1:cpu") == 0

    def test_kind_helpers(self):
        assert FaultPlan(rules=(FaultRule(DELAY),)).has_ingest_faults()
        assert not FaultPlan(rules=(FaultRule(DROP),)).has_ingest_faults()
        assert FaultPlan(
            rules=(FaultRule(HISTORY_ERROR),)).has_history_faults()
        assert not FaultPlan().has_history_faults()

    def test_describe_roundtrip(self):
        plan = FaultPlan(seed=9, name="custom", rules=(
            FaultRule(DELAY, probability=0.5, delay_bins=2),
            FaultRule(SILENCE, window=(0, 300), key_glob="server:*"),
        ))
        assert FaultPlan.from_dict(plan.describe()) == plan


class TestPresets:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_every_preset_constructs(self, name):
        plan = preset_plan(name, seed=3, lead_time=600)
        assert plan.name == name
        assert plan.seed == 3

    def test_unknown_preset_raises(self):
        with pytest.raises(ParameterError):
            preset_plan("blackout")

    def test_none_preset_is_empty(self):
        plan = preset_plan("none")
        assert plan.rules == ()
        assert plan.push_action("k", 0) == DELIVER

    def test_silence_preset_anchors_on_lead_time(self):
        plan = preset_plan("agent-silence", lead_time=1200, bin_seconds=60)
        (rule,) = plan.rules
        assert rule.window == (1200, 1500)
