"""Baseline-contamination resilience — the section 3.2.5 design claims.

FUNNEL counters contaminated baselines with (1) a long (30-day)
historical control, so that a few polluted days are outvoted, and
(2) averaging over many control-group KPIs, so that hotspot servers or
odd peers do not dominate.  These tests inject the contamination and
check both mechanisms.
"""

import numpy as np

from repro.core.did import DiDEstimator, DiDPanel
from repro.core.funnel import Funnel
from repro.synthetic.contamination import (ContaminationConfig,
                                           contaminate_history_panel)
from repro.types import Verdict


def seasonal_day(rng, bins=240, base=200.0):
    t = np.arange(bins, dtype=float)
    profile = base * (1.0 + 0.4 * np.sin(2 * np.pi * (t + 300) / 1440.0))
    return profile + rng.normal(0, 3.0, size=bins)


class TestLongHistoricalBaseline:
    def _assess(self, rng, days, outage_fraction, effect=-60.0):
        today = seasonal_day(rng)
        today[120:] += effect
        history = np.vstack([seasonal_day(rng) for _ in range(days)])
        history = contaminate_history_panel(
            history, ContaminationConfig(outage_fraction=outage_fraction),
            rng)
        return Funnel().assess(today, 120, history=history)

    def test_clean_history_attributes_impact(self, rng):
        result = self._assess(rng, days=30, outage_fraction=0.0)
        assert result.verdict is Verdict.CAUSED_BY_CHANGE

    def test_thirty_days_survive_contamination(self, rng):
        """With 30 days, 20% outage-polluted days are outvoted."""
        hits = 0
        for seed in range(6):
            local = np.random.default_rng(1000 + seed)
            result = self._assess(local, days=30, outage_fraction=0.2)
            hits += result.verdict is Verdict.CAUSED_BY_CHANGE
        assert hits >= 5

    def test_short_history_is_fragile(self, rng):
        """The same contamination rate hurts a 3-day baseline far more:
        the DiD estimate varies wildly with which days got polluted."""
        estimates_short, estimates_long = [], []
        for seed in range(8):
            local = np.random.default_rng(2000 + seed)
            short = self._assess(local, days=3, outage_fraction=0.3,
                                 effect=0.0)
            local = np.random.default_rng(2000 + seed)
            long = self._assess(local, days=30, outage_fraction=0.3,
                                effect=0.0)
            if short.did_estimate is not None:
                estimates_short.append(abs(short.did_estimate))
            if long.did_estimate is not None:
                estimates_long.append(abs(long.did_estimate))
        # No-change days: whatever was detected, the long baseline's
        # estimates are tighter around zero.
        if estimates_short and estimates_long:
            assert np.median(estimates_long) <= np.median(estimates_short)


class TestControlGroupAveraging:
    def test_hotspot_peers_do_not_flip_the_verdict(self, rng):
        """Section 3.2.4, observation 4: <3% of servers are hotspots;
        the control-group average dilutes them."""
        shared = 50.0 + rng.normal(0, 1.0, size=(26, 240))
        treated, control = shared[:2].copy(), shared[2:].copy()
        treated[:, 120:] += 8.0
        # One hotspot in the control group goes haywire post-change.
        control[0, 120:] += 40.0
        result = Funnel().assess(treated, 120, control=control)
        assert result.verdict is Verdict.CAUSED_BY_CHANGE

    def test_tiny_control_group_is_fragile(self, rng):
        """With only 2 peers, one hotspot dominates the control mean and
        the DiD estimate degrades — quantifying why the paper leans on
        large control groups."""
        shared = 50.0 + rng.normal(0, 1.0, size=(26, 240))
        treated = shared[:2].copy()
        treated[:, 120:] += 8.0
        estimator = DiDEstimator()

        def alpha_with(n_control):
            control = shared[2:2 + n_control].copy()
            control[0, 120:] += 40.0           # the hotspot
            panel = DiDPanel(treated[:, 100:120], treated[:, 140:160],
                             control[:, 100:120], control[:, 140:160])
            return estimator.fit(panel).alpha

        small = alpha_with(2)
        large = alpha_with(24)
        # True effect: +8; the hotspot pushes the control mean up by
        # 40/n, biasing alpha down by the same amount.
        assert abs(large - 8.0) < abs(small - 8.0)
        assert abs(large - 8.0) < 3.0
