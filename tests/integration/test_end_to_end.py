"""Cross-module integration tests: topology -> telemetry -> changes ->
detection -> attribution, exercised together."""

import pytest

from repro.changes.rollout import RolloutPolicy, plan_rollout
from repro.core.funnel import Funnel, FunnelConfig
from repro.core.rsst import ImprovedSSTParams
from repro.eval import evaluate_corpus, make_method
from repro.simulation import ServiceScenario
from repro.synthetic import CorpusSpec, EvaluationCorpus
from repro.telemetry.kpi import KpiKey
from repro.topology.impact import identify_impact_set
from repro.types import ChangeKind, Verdict


class TestFleetToFunnel:
    """The full paper pipeline on a scenario fleet."""

    def test_rollback_worthy_regression_is_caught_everywhere(self):
        scenario = ServiceScenario(seed=10)
        scenario.add_service("shop.checkout", n_servers=10)
        scenario.run(minutes=200)
        change = scenario.deploy_change(
            "shop.checkout", ChangeKind.SOFTWARE_UPGRADE,
            effect_sigmas=7.0, metric="memory_utilization")
        scenario.run(minutes=100)
        assessment = scenario.assess(change)

        treated = set(assessment.impact_set.treated_hostnames)
        flagged_hosts = {str(k).split(":")[1] for k in assessment.flagged}
        assert flagged_hosts == treated

    def test_benign_change_produces_no_alerts_across_services(self):
        scenario = ServiceScenario(seed=11)
        for name in ("mail.smtp", "mail.imap", "mail.spool"):
            scenario.add_service(name, n_servers=5)
        scenario.run(minutes=200)
        change = scenario.deploy_change("mail.imap",
                                        ChangeKind.CONFIG_CHANGE)
        scenario.run(minutes=100)
        assessment = scenario.assess(change)
        assert assessment.flagged == []
        # Sibling services under "mail" are affected services.
        assert assessment.impact_set.affected_services == {"mail.smtp",
                                                           "mail.spool"}

    def test_store_subscription_sees_collected_data(self):
        scenario = ServiceScenario(seed=12)
        scenario.add_service("svc.sub", n_servers=2)
        key = KpiKey("server", "host-0001", "memory_utilization")
        fragments = []
        scenario.store.subscribe([key],
                                 lambda k, f: fragments.append(len(f)))
        scenario.run(minutes=40)
        assert sum(fragments) == 40


class TestCorpusPipelineInvariants:
    """Properties that must hold for any corpus the runner consumes."""

    @pytest.fixture(scope="class")
    def result(self):
        items = list(EvaluationCorpus(CorpusSpec(scale=0.015, seed=5)))
        methods = {"funnel": make_method("funnel"),
                   "improved_sst": make_method("improved_sst")}
        return evaluate_corpus(items, methods), items

    def test_counts_conserved(self, result):
        evaluation, items = result
        for method in ("funnel", "improved_sst"):
            raw_total = sum(
                m.total for (name, _, _), m in evaluation.strata.items()
                if name == method)
            assert raw_total == len(items)

    def test_funnel_never_less_precise_than_detection_alone(self, result):
        evaluation, _ = result
        funnel = evaluation.overall("funnel")
        sst = evaluation.overall("improved_sst")
        # DiD can only remove false positives, never add them.
        assert funnel.fp <= sst.fp
        # And it cannot create detections out of thin air.
        assert funnel.tp <= sst.tp

    def test_delays_only_from_true_positives(self, result):
        evaluation, items = result
        positives = sum(1 for i in items if i.truth.positive)
        for method, dist in evaluation.delays.items():
            assert len(dist) <= positives


class TestLaunchModeRouting:
    """Fig. 3's branching: peers when dark-launched, history otherwise."""

    def _item_series(self, rng, effect):
        shared = 40.0 + rng.normal(0, 1.0, size=(10, 200))
        treated, control = shared[:3].copy(), shared[3:]
        if effect:
            treated[:, 100:] += effect
        return treated, control

    def test_dark_launch_uses_peer_control(self, rng):
        treated, control = self._item_series(rng, effect=7.0)
        result = Funnel().assess(treated, 100, control=control)
        assert result.control == "peers"

    def test_full_launch_uses_history(self, rng):
        treated, _ = self._item_series(rng, effect=7.0)
        history = 40.0 + rng.normal(0, 1.0, size=(30, 200))
        result = Funnel().assess(treated, 100, history=history)
        assert result.control == "history"
        assert result.verdict is Verdict.CAUSED_BY_CHANGE

    def test_plan_rollout_feeds_impact_set(self):
        hosts = ["srv-%02d" % i for i in range(12)]
        plan = plan_rollout(hosts, RolloutPolicy(treated_fraction=0.25,
                                                 seed=3))
        from repro.topology.entities import Fleet
        fleet = Fleet()
        fleet.add_service("svc.z", hosts)
        impact = identify_impact_set(fleet, "svc.z", plan.treated)
        assert set(impact.control_hostnames) == set(plan.control)
        assert impact.dark_launched


class TestParameterProfiles:
    """Section 3.2.3's omega profiles behave as documented."""

    @pytest.mark.parametrize("omega", [5, 9, 15])
    def test_all_profiles_catch_a_big_shift(self, omega, rng):
        x = 30.0 + rng.normal(0, 0.5, size=300)
        x[150:] += 5.0
        cfg = FunnelConfig(sst=ImprovedSSTParams(omega=omega))
        changes = Funnel(cfg).detect(x, change_index=150)
        assert changes

    def test_quick_profile_declares_soonest(self, rng):
        x = 30.0 + rng.normal(0, 0.5, size=300)
        x[150:] += 5.0
        indices = {}
        for omega in (5, 9, 15):
            cfg = FunnelConfig(sst=ImprovedSSTParams(omega=omega))
            changes = Funnel(cfg).detect(x, change_index=150)
            indices[omega] = changes[0].index
        assert indices[5] <= indices[9] <= indices[15]
