"""Tests for CSV/JSONL interchange."""

import io

import numpy as np
import pytest

from repro.changes.change import SoftwareChange
from repro.changes.log import ChangeLog
from repro.exceptions import ChangeLogError, TelemetryError
from repro.io.changelog import (change_from_dict, change_to_dict,
                                read_change_log, write_change_log)
from repro.io.csvio import (read_matrix, read_series, write_matrix,
                            write_series)
from repro.telemetry.timeseries import TimeSeries
from repro.types import ChangeKind


class TestSeriesCsv:
    def test_roundtrip(self, tmp_path):
        series = TimeSeries(600, 60, [1.5, 2.5, 3.5])
        path = tmp_path / "s.csv"
        write_series(series, path)
        loaded = read_series(path)
        assert loaded.start == 600
        assert loaded.bin_seconds == 60
        np.testing.assert_array_equal(loaded.values, series.values)

    def test_roundtrip_via_buffers(self):
        series = TimeSeries(0, 30, np.linspace(0, 1, 10))
        buffer = io.StringIO()
        write_series(series, buffer)
        buffer.seek(0)
        loaded = read_series(buffer)
        np.testing.assert_allclose(loaded.values, series.values)
        assert loaded.bin_seconds == 30

    def test_gap_rejected(self):
        buffer = io.StringIO("timestamp,value\n0,1.0\n60,2.0\n180,3.0\n")
        with pytest.raises(TelemetryError):
            read_series(buffer)

    def test_unsorted_rejected(self):
        buffer = io.StringIO("timestamp,value\n60,1.0\n0,2.0\n")
        with pytest.raises(TelemetryError):
            read_series(buffer)

    def test_non_numeric_rejected(self):
        buffer = io.StringIO("timestamp,value\n0,1.0\n60,abc\n")
        with pytest.raises(TelemetryError):
            read_series(buffer)

    def test_bad_column_count(self):
        buffer = io.StringIO("timestamp,value\n0,1.0,9\n")
        with pytest.raises(TelemetryError):
            read_series(buffer)

    def test_too_short(self):
        buffer = io.StringIO("timestamp,value\n0,1.0\n")
        with pytest.raises(TelemetryError):
            read_series(buffer)

    def test_empty_file(self):
        with pytest.raises(TelemetryError):
            read_series(io.StringIO(""))


class TestMatrixCsv:
    def test_roundtrip(self, tmp_path):
        matrix = np.arange(12.0).reshape(3, 4)
        path = tmp_path / "m.csv"
        write_matrix(matrix, ["u1", "u2", "u3"], start=0, bin_seconds=60,
                     target=path)
        loaded, units, start, bins = read_matrix(path)
        np.testing.assert_array_equal(loaded, matrix)
        assert units == ["u1", "u2", "u3"]
        assert (start, bins) == (0, 60)

    def test_duplicate_units_rejected(self):
        buffer = io.StringIO("timestamp,a,a\n0,1,2\n60,3,4\n")
        with pytest.raises(TelemetryError):
            read_matrix(buffer)

    def test_ragged_rows_rejected(self):
        buffer = io.StringIO("timestamp,a,b\n0,1,2\n60,3\n")
        with pytest.raises(TelemetryError):
            read_matrix(buffer)

    def test_shape_mismatch_on_write(self):
        with pytest.raises(TelemetryError):
            write_matrix(np.zeros((2, 3)), ["only-one"], 0, 60,
                         io.StringIO())

    def test_values_precise(self):
        matrix = np.array([[0.1 + 0.2]])          # classic float fun
        buffer = io.StringIO()
        write_matrix(matrix, ["u"], 0, 60, buffer)
        # A single row is below the 2-sample minimum; append one.
        buffer.seek(0, io.SEEK_END)
        buffer.write("60,%r\n" % (0.1 + 0.2))
        buffer.seek(0)
        loaded, _, _, _ = read_matrix(buffer)
        assert loaded[0, 0] == 0.1 + 0.2


class TestChangeLogJsonl:
    def _change(self, change_id="c1", at=0):
        return SoftwareChange(
            change_id=change_id, kind=ChangeKind.CONFIG_CHANGE,
            service="svc.a", hostnames=("h1", "h2"), at_time=at,
            description="turn it off and on again",
            config_scope="service",
        )

    def test_dict_roundtrip(self):
        change = self._change()
        assert change_from_dict(change_to_dict(change)) == change

    def test_file_roundtrip(self, tmp_path):
        log = ChangeLog()
        log.record(self._change("c1", at=0))
        log.record(self._change("c2", at=7200))
        path = tmp_path / "changes.jsonl"
        write_change_log(log, path)
        loaded = read_change_log(path)
        assert len(loaded) == 2
        assert loaded.get("c2").at_time == 7200
        assert loaded.get("c1").config_scope == "service"

    def test_missing_field_rejected(self):
        with pytest.raises(ChangeLogError):
            change_from_dict({"change_id": "x"})

    def test_unknown_kind_rejected(self):
        payload = change_to_dict(self._change())
        payload["kind"] = "rm -rf"
        with pytest.raises(ChangeLogError):
            change_from_dict(payload)

    def test_invalid_json_line(self):
        buffer = io.StringIO("{not json}\n")
        with pytest.raises(ChangeLogError):
            read_change_log(buffer)

    def test_blank_lines_skipped(self):
        buffer = io.StringIO()
        log = ChangeLog()
        log.record(self._change())
        write_change_log(log, buffer)
        buffer.write("\n\n")
        buffer.seek(0)
        assert len(read_change_log(buffer)) == 1

    def test_guard_applies_on_load(self):
        buffer = io.StringIO()
        log = ChangeLog(concurrency_guard_seconds=0)
        log.record(self._change("c1", at=0))
        log.record(self._change("c2", at=60))
        write_change_log(log, buffer)
        buffer.seek(0)
        with pytest.raises(ChangeLogError):
            read_change_log(buffer, concurrency_guard_seconds=3600)
