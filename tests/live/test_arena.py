"""Tests for the shared detector arena and its fused tick operations."""

import numpy as np

from repro.core.funnel import FunnelConfig
from repro.live.arena import DetectorArena
from repro.live.detector import IncrementalDetector


def _stream(rng, n=80, step_at=30):
    x = 50.0 + rng.normal(0, 0.5, size=n)
    x[step_at:] += 4.0
    return x


class TestArenaGeometry:
    def test_acquire_release_recycles_rows(self):
        arena = DetectorArena(capacity=16, rows=2)
        a = arena.acquire()
        b = arena.acquire()
        assert a != b
        assert arena.active_rows == 2
        arena.release(a)
        assert arena.active_rows == 1
        assert arena.acquire() == a

    def test_acquire_grows_rows_and_keeps_data(self):
        arena = DetectorArena(capacity=8, rows=1)
        first = arena.acquire()
        arena.values[first, :3] = [1.0, 2.0, 3.0]
        arena.norm[first, :3] = [4.0, 5.0, 6.0]
        before = arena.rows
        rows = [arena.acquire() for _ in range(before + 2)]
        assert arena.rows > before
        assert len({first, *rows}) == len(rows) + 1
        assert arena.values[first, :3].tolist() == [1.0, 2.0, 3.0]
        assert arena.norm[first, :3].tolist() == [4.0, 5.0, 6.0]

    def test_acquired_row_has_zero_scores(self):
        arena = DetectorArena(capacity=8, rows=1)
        row = arena.acquire()
        arena.scores[row, :] = 7.0
        arena.release(row)
        assert arena.acquire() == row
        assert not arena.scores[row].any()

    def test_ensure_capacity_preserves_planes(self):
        arena = DetectorArena(capacity=4, rows=1)
        row = arena.acquire()
        arena.values[row, :4] = [1.0, 2.0, 3.0, 4.0]
        arena.norm[row, :4] = [5.0, 6.0, 7.0, 8.0]
        arena.scores[row, 2] = 9.0
        arena.ensure_capacity(100)
        assert arena.capacity >= 100
        assert arena.values[row, :4].tolist() == [1.0, 2.0, 3.0, 4.0]
        assert arena.norm[row, :4].tolist() == [5.0, 6.0, 7.0, 8.0]
        # New score columns are zero (the zeros-where-unscored invariant).
        assert arena.scores[row, 2] == 9.0
        assert not arena.scores[row, 4:].any()


class TestExtendBatch:
    def test_tensor_path_matches_sequential_extends(self, rng):
        """One scatter-write + broadcast normalise == n private extends,
        bitwise across every plane."""
        config = FunnelConfig()
        arena = DetectorArena()
        streams = [_stream(rng) for _ in range(5)]
        shared = [IncrementalDetector(30, config, arena=arena)
                  for _ in streams]
        private = [IncrementalDetector(30, config) for _ in streams]
        # Freeze statistics first (warmup goes through detector.extend).
        for detector, x in zip(shared + private, streams + streams):
            detector.extend(x[:40])
        scattered = arena.extend_batch(
            [(d, x[40:]) for d, x in zip(shared, streams)])
        assert scattered == len(streams)
        for d, x in zip(private, streams):
            d.extend(x[40:])
        for s, p in zip(shared, private):
            assert s._n == p._n
            assert s._values[:s._n].tobytes() == p._values[:p._n].tobytes()
            assert s._norm[:s._n].tobytes() == p._norm[:p._n].tobytes()

    def test_mixed_widths_group_correctly(self, rng):
        config = FunnelConfig()
        arena = DetectorArena()
        detectors = [IncrementalDetector(30, config, arena=arena)
                     for _ in range(4)]
        base = _stream(rng, n=50)
        for d in detectors:
            d.extend(base)
        chunks = [rng.normal(size=w) for w in (1, 3, 1, 3)]
        scattered = arena.extend_batch(list(zip(detectors, chunks)))
        assert scattered == 4
        for d, chunk in zip(detectors, chunks):
            assert d._n == 50 + chunk.size
            np.testing.assert_array_equal(d._values[50:d._n], chunk)

    def test_warming_detector_falls_back_to_extend(self, rng):
        """Statistics not fixed yet: the row must go through the
        detector's own extend (which computes them), not the scatter."""
        config = FunnelConfig()
        arena = DetectorArena()
        cold = IncrementalDetector(30, config, arena=arena)
        scattered = arena.extend_batch([(cold, _stream(rng)[:10])])
        assert scattered == 0
        assert cold._n == 10

    def test_foreign_arena_falls_back(self, rng):
        config = FunnelConfig()
        arena, other = DetectorArena(), DetectorArena()
        foreign = IncrementalDetector(30, config, arena=other)
        foreign.extend(_stream(rng, n=40))
        scattered = arena.extend_batch([(foreign, np.ones(2))])
        assert scattered == 0
        assert foreign._n == 42

    def test_empty_values_are_skipped(self, rng):
        config = FunnelConfig()
        arena = DetectorArena()
        d = IncrementalDetector(30, config, arena=arena)
        d.extend(_stream(rng, n=40))
        assert arena.extend_batch([(d, np.empty(0))]) == 0
        assert d._n == 40

    def test_gather_norm_equals_stacked_segments(self, rng):
        config = FunnelConfig()
        arena = DetectorArena()
        detectors = [IncrementalDetector(30, config, arena=arena)
                     for _ in range(3)]
        for d in detectors:
            d.extend(_stream(rng, n=60))
        lo, hi = 5, 41
        gathered = arena.gather_norm([d._row for d in detectors], lo, hi)
        stacked = np.stack([d._norm[lo:hi] for d in detectors])
        assert gathered.flags["C_CONTIGUOUS"]
        assert gathered.tobytes() == stacked.tobytes()


class TestDetach:
    def test_detach_keeps_state_and_frees_row(self, rng):
        config = FunnelConfig()
        arena = DetectorArena()
        d = IncrementalDetector(30, config, arena=arena)
        d.extend(_stream(rng, n=60))
        row, n = d._row, d._n
        series = d.series.copy()
        scores = d.scores.copy()
        active = arena.active_rows
        d.detach()
        assert arena.active_rows == active - 1
        assert d.arena is not arena
        np.testing.assert_array_equal(d.series, series)
        np.testing.assert_array_equal(d.scores, scores)
        # The released row is recyclable and its reuse cannot corrupt
        # the detached detector.
        assert arena.acquire() == row
        arena.values[row, :] = -1.0
        np.testing.assert_array_equal(d.series, series)

    def test_detach_is_idempotent_and_noop_for_private(self, rng):
        config = FunnelConfig()
        private = IncrementalDetector(30, config)
        private.extend(_stream(rng, n=40))
        arena_before = private.arena
        private.detach()
        assert private.arena is arena_before

    def test_state_dict_round_trips_across_arena_kinds(self, rng):
        """Shared-arena snapshot → private restore and back: the wire
        format carries no arena geometry."""
        config = FunnelConfig()
        arena = DetectorArena()
        shared = IncrementalDetector(30, config, arena=arena)
        shared.extend(_stream(rng, n=70))
        state = shared.state_dict()

        private = IncrementalDetector(30, config)
        private.load_state(state)
        assert private.state_dict() == state

        rehydrated = IncrementalDetector(
            30, config, arena=DetectorArena(capacity=4))
        rehydrated.load_state(private.state_dict())
        assert rehydrated.state_dict() == state
