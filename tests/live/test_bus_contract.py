"""The verdict serialization contract and the durable sink's semantics.

``LiveVerdict.as_dict`` field order/types and the sink's line format
are what the cluster fan-in byte-compares across processes; this module
is the golden pin.  A failing test here means every previously written
verdict file, checkpoint, and CI ``cmp`` baseline just changed meaning
— don't "fix" the test, version the format.
"""

from __future__ import annotations

import dataclasses
import json
import os
import typing

import pytest

from repro.exceptions import TelemetryError
from repro.live.bus import (JsonlVerdictSink, LiveVerdict, read_verdicts,
                            verdict_sort_key)

#: The pinned wire contract: (name, type, default) per field, in order.
GOLDEN_FIELDS = [
    ("change_id", str),
    ("entity_type", str),
    ("entity", str),
    ("metric", str),
    ("verdict", str),
    ("reason", str),
    ("emitted_at", int),
    ("declaration_bin", typing.Optional[int]),
    ("did_estimate", typing.Optional[float]),
    ("control", typing.Optional[str]),
    ("direction", int),
    ("notes", typing.Tuple[str, ...]),
]


def _verdict(**overrides) -> LiveVerdict:
    base = dict(change_id="chg-7", entity_type="server", entity="host-3",
                metric="cpu_util", verdict="impact", reason="declared",
                emitted_at=4200, declaration_bin=17, did_estimate=1.25,
                control="cservers", direction=1, notes=("a", "b"))
    base.update(overrides)
    return LiveVerdict(**base)


def test_field_order_and_types_are_pinned():
    fields = dataclasses.fields(LiveVerdict)
    hints = typing.get_type_hints(LiveVerdict)
    assert [(f.name, hints[f.name]) for f in fields] == GOLDEN_FIELDS
    # Defaults are part of the contract too: absent-by-default fields
    # must stay absent-by-default, or old readers break.
    defaults = {f.name: f.default for f in fields
                if f.default is not dataclasses.MISSING}
    assert defaults == {"declaration_bin": None, "did_estimate": None,
                        "control": None, "direction": 0, "notes": ()}


def test_as_dict_preserves_field_order_and_round_trips():
    verdict = _verdict()
    doc = verdict.as_dict()
    assert list(doc) == [name for name, _ in GOLDEN_FIELDS]
    assert doc["notes"] == ["a", "b"]  # JSON-safe list, not tuple
    assert LiveVerdict.from_dict(json.loads(json.dumps(doc))) == verdict


def test_sink_line_format_is_sorted_compact_json(tmp_path):
    path = tmp_path / "v.jsonl"
    with JsonlVerdictSink(str(path)) as sink:
        sink(_verdict())
    line = path.read_text().splitlines()[0]
    assert line == json.dumps(_verdict().as_dict(), sort_keys=True)


def test_sort_key_orders_by_time_then_key():
    early = _verdict(emitted_at=10, entity="host-9")
    late = _verdict(emitted_at=20, entity="host-1")
    tied = _verdict(emitted_at=10, entity="host-1")
    ordered = sorted([late, early, tied], key=verdict_sort_key)
    assert ordered == [tied, early, late]


def test_close_is_idempotent_and_exit_after_close_is_a_noop(tmp_path):
    path = tmp_path / "v.jsonl"
    sink = JsonlVerdictSink(str(path))
    with sink:
        sink(_verdict())
        sink.close()
        sink.close()  # double close: no error
    # __exit__ ran after the explicit close: still no error, and a
    # write after close is silently dropped rather than crashing.
    sink(_verdict(entity="host-ignored"))
    assert sink.written == 1
    assert len(read_verdicts(str(path))) == 1


def test_sink_is_line_buffered_before_close(tmp_path):
    # Each complete line reaches the OS immediately — what makes a
    # killed shard's partial file readable.
    path = tmp_path / "v.jsonl"
    sink = JsonlVerdictSink(str(path))
    sink(_verdict())
    assert len(read_verdicts(str(path))) == 1  # not yet closed
    sink.close()


def test_read_verdicts_tolerates_a_torn_tail(tmp_path):
    path = tmp_path / "v.jsonl"
    with JsonlVerdictSink(str(path)) as sink:
        sink(_verdict(entity="host-1"))
        sink(_verdict(entity="host-2"))
    # Simulate a crash mid-write: truncate the last line.
    data = path.read_bytes()
    path.write_bytes(data[:-25])
    verdicts = read_verdicts(str(path))
    assert [v.entity for v in verdicts] == ["host-1"]
    with pytest.raises(TelemetryError):
        read_verdicts(str(path), tolerate_torn_tail=False)


def test_read_verdicts_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "v.jsonl"
    good = json.dumps(_verdict().as_dict(), sort_keys=True)
    path.write_text("%s\n{corrupt\n%s\n" % (good, good))
    with pytest.raises(TelemetryError):
        read_verdicts(str(path))


def test_fsync_on_close_can_be_disabled(tmp_path):
    path = tmp_path / "v.jsonl"
    sink = JsonlVerdictSink(str(path), fsync_on_close=False)
    sink(_verdict())
    sink.close()
    assert len(read_verdicts(str(path))) == 1
    assert not os.path.exists(str(path) + ".tmp")
