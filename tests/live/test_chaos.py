"""Chaos replay: verdicts survive injected faults, degrade gracefully.

Three properties are pinned:

* **parity under faults** — for every bounded preset plan, the live
  pipeline (with ``repair_from_store`` and a close grace covering the
  worst injected delay) still produces exactly the offline verdict set;
* **seeded determinism** — the same plan and seed reproduce the same
  verdict stream, byte for byte;
* **graceful degradation** — a history provider that keeps failing past
  the retry budget yields a ``degraded`` annotation, not a crash.
"""

from types import SimpleNamespace

import pytest

from repro.engine import reset_shared_cache
from repro.engine.fleet import FleetScenarioSpec
from repro.exceptions import TelemetryError
from repro.faults import (DELAY, HISTORY_ERROR, FaultPlan, FaultRule,
                          FaultyHistoryProvider, preset_plan)
from repro.live import parity_live_config, replay_scenario
from repro.live.assessor import LiveAssessor
from repro.live.bus import VerdictBus
from repro.live.config import LiveConfig
from repro.faults.injector import FAULTS_INJECTED_METRIC
from repro.telemetry.kpi import KpiKey
from repro.telemetry.timeseries import MINUTE

SPEC = FleetScenarioSpec(n_services=2, n_servers=8, n_changes=2,
                         window_bins=120, change_offset=60,
                         history_days=1, seed=5)
#: every change a full launch, so attribution exercises the history path
FULL_SPEC = FleetScenarioSpec(n_services=2, n_servers=8, n_changes=2,
                              window_bins=120, change_offset=60,
                              dark_fraction=0.0, history_days=1, seed=7)


@pytest.fixture(autouse=True)
def _fresh_baseline_cache():
    # The engine's baseline-stats cache is keyed by change/entity/metric,
    # which collides across the different scenario specs used here.
    reset_shared_cache()
    yield
    reset_shared_cache()


def chaos_config(spec, plan, **overrides):
    """The parity config hardened for ``plan``: read-repair on, close
    grace covering the plan's worst injected delay."""
    grace = max((rule.delay_bins for rule in plan.rules
                 if rule.kind == DELAY), default=0) * MINUTE
    return parity_live_config(spec, repair_from_store=True,
                              close_grace_seconds=grace, **overrides)


def run_chaos(spec, plan, check_offline=False, **config_overrides):
    return replay_scenario(
        spec, live_config=chaos_config(spec, plan, **config_overrides),
        fault_plan=plan, check_offline=check_offline)


class TestChaosParity:
    @pytest.mark.parametrize("preset", ["drop-delay-dup", "reorder",
                                        "agent-silence", "all"])
    def test_parity_survives_preset(self, preset):
        plan = preset_plan(preset, seed=11,
                           lead_time=SPEC.lead_bins * MINUTE)
        report = run_chaos(SPEC, plan, check_offline=True)
        assert report.parity_ok is True
        assert report.parity["live_only"] == []
        assert report.parity["offline_only"] == []

    def test_faults_were_actually_injected(self):
        plan = preset_plan("drop-delay-dup", seed=11)
        report = run_chaos(SPEC, plan)
        counters = report.service_report["counters"]
        assert counters.get(FAULTS_INJECTED_METRIC, 0) > 0
        assert report.fault_plan == plan.describe()

    def test_flaky_history_recovers_within_retry_budget(self):
        # error_attempts=2 leading failures < the default 3 attempts
        # (fetch_retries=2), so every fetch heals and parity holds.
        plan = preset_plan("flaky-history", seed=11)
        report = run_chaos(FULL_SPEC, plan, check_offline=True)
        assert report.parity_ok is True
        counters = report.service_report["counters"]
        assert counters.get(FAULTS_INJECTED_METRIC, 0) > 0
        assert all("degraded" not in note
                   for v in report.verdicts for note in v.notes)


class TestSeededDeterminism:
    def test_same_seed_reproduces_the_verdict_stream(self):
        plan = preset_plan("all", seed=23,
                           lead_time=SPEC.lead_bins * MINUTE)
        first = run_chaos(SPEC, plan)
        second = run_chaos(SPEC, plan)
        assert [v.as_dict() for v in first.verdicts] == \
            [v.as_dict() for v in second.verdicts]

    def test_different_seed_changes_the_injected_faults(self):
        counts = []
        for seed in (1, 2):
            plan = preset_plan("drop-delay-dup", seed=seed)
            report = run_chaos(SPEC, plan)
            counts.append(report.service_report["counters"]
                          .get(FAULTS_INJECTED_METRIC, 0))
        assert counts[0] != counts[1]


class TestRetryExhaustion:
    def test_exhausted_history_degrades_the_verdict(self):
        # 5 leading failures against a single attempt (fetch_retries=0):
        # every history fetch is exhausted, verdicts still emit but
        # carry the degraded annotation.
        plan = FaultPlan(seed=3, rules=(
            FaultRule(HISTORY_ERROR, error_attempts=5),))
        report = run_chaos(FULL_SPEC, plan, fetch_retries=0)
        degraded = [v for v in report.verdicts
                    if any(note.startswith("degraded:")
                           for note in v.notes)]
        assert degraded
        counters = report.service_report["counters"]
        assert counters.get("repro_live_degraded_verdicts_total", 0) == \
            len(degraded)
        # degraded or not, every monitored KPI still got an answer
        assert report.service_report["active_changes"] == 0


def run_chaos_fetch(config, provider, clock=None, sleep=None):
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    if sleep is not None:
        kwargs["sleep"] = sleep
    assessor = LiveAssessor(config, VerdictBus(),
                            history_provider=provider, **kwargs)
    session = SimpleNamespace(change=SimpleNamespace(change_id="chg-1"))
    tracker = SimpleNamespace(key=KpiKey("service", "api", "latency"))
    return assessor._fetch_history(session, tracker)


class TestFetchRetryUnit:
    def test_persistent_failure_exhausts_and_reports_unhealthy(self):
        calls = []

        def provider(*args):
            calls.append(args)
            raise TelemetryError("down")

        rows, healthy = run_chaos_fetch(LiveConfig(fetch_retries=2),
                                        provider)
        assert rows is None and healthy is False
        assert len(calls) == 3           # 1 try + 2 retries

    def test_transient_failure_recovers(self):
        attempts = []

        def provider(*args):
            attempts.append(1)
            if len(attempts) == 1:
                raise TelemetryError("blip")
            return "rows"

        rows, healthy = run_chaos_fetch(LiveConfig(fetch_retries=2),
                                        provider)
        assert rows == "rows" and healthy is True
        assert len(attempts) == 2

    def test_timeout_budget_counts_as_failure(self):
        ticks = iter(range(0, 1000, 10))   # every clock() call jumps 10s
        rows, healthy = run_chaos_fetch(
            LiveConfig(fetch_retries=1, fetch_timeout_seconds=1.0),
            lambda *args: "rows", clock=lambda: next(ticks))
        assert rows is None and healthy is False

    def test_backoff_doubles_between_retries(self):
        sleeps = []
        rows, healthy = run_chaos_fetch(
            LiveConfig(fetch_retries=2, fetch_backoff_seconds=0.5),
            lambda *args: (_ for _ in ()).throw(TelemetryError("down")),
            sleep=sleeps.append)
        assert healthy is False
        assert sleeps == [0.5, 1.0]


class TestPooledChaosParity:
    @pytest.mark.parametrize("preset", ["drop-delay-dup", "all"])
    def test_parity_survives_preset_with_pooled_scoring(self, preset):
        plan = preset_plan(preset, seed=11,
                           lead_time=SPEC.lead_bins * MINUTE)
        report = run_chaos(SPEC, plan, check_offline=True,
                           pooled_scoring=True)
        assert report.parity_ok is True
        assert report.parity["live_only"] == []
        assert report.parity["offline_only"] == []
