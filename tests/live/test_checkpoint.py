"""Checkpoint, kill, resume: the resumed verdicts are bit-identical.

The contract: a replay killed mid-stream and resumed from its last
checkpoint must publish exactly the verdict bytes an uninterrupted run
would — same verdict values, same declaration bins, same notes, same
emission instants — with or without a fault plan active.
"""

import json
from types import SimpleNamespace

import pytest

from repro.engine import reset_shared_cache
from repro.engine.fleet import FleetScenarioSpec
from repro.exceptions import CheckpointError
from repro.faults import DELAY, preset_plan
from repro.live import parity_live_config, replay_scenario
from repro.live.checkpoint import (CHECKPOINT_VERSION, Checkpointer,
                                   load_checkpoint, restore_service)
from repro.telemetry.timeseries import MINUTE

SPEC = FleetScenarioSpec(n_services=2, n_servers=8, n_changes=2,
                         window_bins=120, change_offset=60,
                         history_days=1, seed=5)
#: kill instant: mid-second-change (admitted ~tick 181, closes at 240),
#: so the checkpoint carries live detector and queue state.
KILL_AT = 200


@pytest.fixture(autouse=True)
def _fresh_baseline_cache():
    reset_shared_cache()
    yield
    reset_shared_cache()


def verdict_bytes(report):
    return [json.dumps(v.as_dict(), sort_keys=True)
            for v in report.verdicts]


class TestKillAndResume:
    def test_clean_resume_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "live.ckpt")
        baseline = replay_scenario(SPEC)
        killed = replay_scenario(SPEC, checkpoint_path=path,
                                 checkpoint_every=10,
                                 kill_after_ticks=KILL_AT)
        assert killed.killed is True
        assert killed.checkpoints_written >= 1
        assert len(killed.verdicts) < len(baseline.verdicts)
        assert killed.service_report["active_changes"] > 0
        reset_shared_cache()
        resumed = replay_scenario(SPEC, resume_from=path,
                                  check_offline=True)
        assert resumed.resumed is True
        assert verdict_bytes(resumed) == verdict_bytes(baseline)
        assert resumed.parity_ok is True

    def test_resume_under_faults_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "chaos.ckpt")
        plan = preset_plan("drop-delay-dup", seed=11)
        grace = max(rule.delay_bins for rule in plan.rules
                    if rule.kind == DELAY) * MINUTE
        config = parity_live_config(SPEC, repair_from_store=True,
                                    close_grace_seconds=grace)
        baseline = replay_scenario(SPEC, live_config=config,
                                   fault_plan=plan)
        killed = replay_scenario(SPEC, live_config=config, fault_plan=plan,
                                 checkpoint_path=path, checkpoint_every=10,
                                 kill_after_ticks=KILL_AT)
        assert killed.killed is True
        reset_shared_cache()
        resumed = replay_scenario(SPEC, live_config=config, fault_plan=plan,
                                  resume_from=path)
        assert verdict_bytes(resumed) == verdict_bytes(baseline)

    def test_killed_run_skips_shutdown_and_parity(self, tmp_path):
        path = str(tmp_path / "live.ckpt")
        killed = replay_scenario(SPEC, checkpoint_path=path,
                                 checkpoint_every=10,
                                 kill_after_ticks=KILL_AT,
                                 check_offline=True)
        assert killed.killed is True
        assert killed.parity is None      # a dead run asserts nothing
        assert killed.service_report["active_changes"] > 0


class TestCheckpointFile:
    def test_checkpoint_is_versioned_jsonl(self, tmp_path):
        path = str(tmp_path / "live.ckpt")
        report = replay_scenario(SPEC, checkpoint_path=path,
                                 checkpoint_every=10)
        # 240 streamed bins at flush_bins=1 -> 240 ticks, one write
        # every 10 ticks.
        assert report.ticks == 240
        assert report.checkpoints_written == 24
        records = [json.loads(line)
                   for line in open(path, encoding="utf-8")]
        meta = records[0]
        assert meta["record"] == "meta"
        assert meta["version"] == CHECKPOINT_VERSION
        assert meta["extra"]["flush_bins"] == 1
        assert meta["extra"]["offset"] == 240
        kinds = {record["record"] for record in records}
        assert {"meta", "watcher", "scheduler", "service",
                "bus"} <= kinds

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_load_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        path.write_text('{"record": "meta", "version": 1}\nnot json\n')
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_load_without_meta_raises(self, tmp_path):
        path = tmp_path / "headless.ckpt"
        path.write_text('{"record": "watcher", "seen": []}\n')
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_load_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_text('{"record": "meta", "version": 99}\n')
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))


class TestResumeValidation:
    @pytest.fixture()
    def checkpoint(self, tmp_path):
        path = str(tmp_path / "live.ckpt")
        replay_scenario(SPEC, checkpoint_path=path, checkpoint_every=10,
                        kill_after_ticks=KILL_AT)
        reset_shared_cache()
        return path

    def test_resume_with_different_spec_raises(self, checkpoint):
        other = FleetScenarioSpec(n_services=2, n_servers=8, n_changes=2,
                                  window_bins=120, change_offset=60,
                                  history_days=1, seed=6)
        with pytest.raises(CheckpointError):
            replay_scenario(other, resume_from=checkpoint)

    def test_resume_with_different_flush_bins_raises(self, checkpoint):
        with pytest.raises(CheckpointError):
            replay_scenario(SPEC, flush_bins=2, resume_from=checkpoint)

    def test_resume_with_different_fault_plan_raises(self, checkpoint):
        with pytest.raises(CheckpointError):
            replay_scenario(SPEC, fault_plan=preset_plan("reorder"),
                            resume_from=checkpoint)

    def test_resume_from_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            replay_scenario(SPEC,
                            resume_from=str(tmp_path / "absent.ckpt"))


class TestGuards:
    def test_restore_needs_a_fresh_service(self):
        stale = SimpleNamespace(
            watcher=SimpleNamespace(sessions={"chg-0000": object()}),
            closed=[])
        with pytest.raises(CheckpointError):
            restore_service(stale, {"sessions": []})

    def test_checkpointer_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpointer(str(tmp_path / "x.ckpt"), every_ticks=0)

    def test_unattached_checkpointer_is_a_noop(self, tmp_path):
        checkpointer = Checkpointer(str(tmp_path / "x.ckpt"),
                                    every_ticks=5)
        assert checkpointer.on_tick(0, 5) is False
        assert checkpointer.written == 0


class TestPooledScoringResume:
    """PR 5's kill-and-resume contract must survive pooled scoring: the
    detector state dict now carries the deferral flag, old checkpoints
    without it still load, and a pooled replay resumed mid-stream
    publishes the uninterrupted run's verdict bytes."""

    def test_pooled_kill_and_resume_is_bit_identical(self, tmp_path):
        config = parity_live_config(SPEC, pooled_scoring=True)
        baseline = replay_scenario(SPEC, live_config=config)
        path = str(tmp_path / "pooled.ckpt")
        killed = replay_scenario(SPEC, live_config=config,
                                 checkpoint_path=path, checkpoint_every=10,
                                 kill_after_ticks=KILL_AT)
        assert killed.killed is True
        reset_shared_cache()
        resumed = replay_scenario(SPEC, live_config=config,
                                  resume_from=path, check_offline=True)
        assert resumed.resumed is True
        assert verdict_bytes(resumed) == verdict_bytes(baseline)
        assert resumed.parity_ok is True

    def test_state_dict_round_trips_deferred_flag(self):
        import numpy as np
        from repro.live import IncrementalDetector
        rng = np.random.default_rng(3)
        x = 10.0 + rng.normal(0, 0.5, size=90)
        deferred = IncrementalDetector(60, deferred_scoring=True)
        deferred.extend(x)
        state = deferred.state_dict()
        assert state["deferred"] is True
        clone = IncrementalDetector(60)
        clone.load_state(state)
        assert clone.deferred is True
        assert clone.pending_segment() is not None

    def test_pre_pool_checkpoint_state_still_loads(self):
        """A checkpoint written before the pooled-scoring field existed
        has no "deferred" key — loading keeps the constructor's mode and
        the restored detector continues bit-identically."""
        import numpy as np
        from repro.live import IncrementalDetector
        rng = np.random.default_rng(9)
        x = 10.0 + rng.normal(0, 0.5, size=200)
        x[120:] += 5.0
        original = IncrementalDetector(120)
        original.extend(x[:150])
        state = original.state_dict()
        state.pop("deferred")          # simulate the old format
        restored = IncrementalDetector(120)
        restored.load_state(state)
        assert restored.deferred is False
        a = original.extend(x[150:])
        b = restored.extend(x[150:])
        assert a == b
        np.testing.assert_array_equal(original.scores, restored.scores)


class TestFusedIngestResume:
    """Checkpoints carry no arena geometry and no ingest-plane mode, so
    a run checkpointed under either ingest plane must resume under
    either — bit-identically, both directions."""

    def _config(self, fused):
        return parity_live_config(SPEC, pooled_scoring=True,
                                  fused_ingest=fused)

    def test_fused_kill_and_resume_is_bit_identical(self, tmp_path):
        config = self._config(fused=True)
        baseline = replay_scenario(SPEC, live_config=config)
        path = str(tmp_path / "fused.ckpt")
        killed = replay_scenario(SPEC, live_config=config,
                                 checkpoint_path=path, checkpoint_every=10,
                                 kill_after_ticks=KILL_AT)
        assert killed.killed is True
        reset_shared_cache()
        resumed = replay_scenario(SPEC, live_config=config,
                                  resume_from=path, check_offline=True)
        assert resumed.resumed is True
        assert verdict_bytes(resumed) == verdict_bytes(baseline)
        assert resumed.parity_ok is True

    @pytest.mark.parametrize("kill_fused,resume_fused", [
        (False, True),   # pre-arena-plane checkpoint, fused restore
        (True, False),   # fused checkpoint, per-fragment restore
    ])
    def test_resume_crosses_ingest_planes(self, tmp_path, kill_fused,
                                          resume_fused):
        baseline = replay_scenario(SPEC,
                                   live_config=self._config(fused=False))
        path = str(tmp_path / "cross.ckpt")
        killed = replay_scenario(SPEC,
                                 live_config=self._config(kill_fused),
                                 checkpoint_path=path, checkpoint_every=10,
                                 kill_after_ticks=KILL_AT)
        assert killed.killed is True
        reset_shared_cache()
        resumed = replay_scenario(SPEC,
                                  live_config=self._config(resume_fused),
                                  resume_from=path, check_offline=True)
        assert resumed.resumed is True
        assert verdict_bytes(resumed) == verdict_bytes(baseline)
        assert resumed.parity_ok is True

    def test_pre_arena_detector_state_restores_into_shared_arena(self):
        """A snapshot from a private (pre-arena layout) detector loads
        into a shared-arena detector and continues bit-identically —
        and the other way around."""
        import numpy as np
        from repro.live import IncrementalDetector
        from repro.live.arena import DetectorArena
        rng = np.random.default_rng(13)
        x = 10.0 + rng.normal(0, 0.5, size=200)
        x[120:] += 5.0
        private = IncrementalDetector(120)
        private.extend(x[:150])

        arena = DetectorArena()
        shared = IncrementalDetector(120, arena=arena)
        shared.load_state(private.state_dict())
        assert shared.state_dict() == private.state_dict()

        back = IncrementalDetector(120)
        back.load_state(shared.state_dict())
        a = private.extend(x[150:])
        b = shared.extend(x[150:])
        c = back.extend(x[150:])
        assert a == b == c
        np.testing.assert_array_equal(private.scores, shared.scores)
        np.testing.assert_array_equal(private.scores, back.scores)
