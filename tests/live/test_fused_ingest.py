"""Fused ingest plane: batched store→queue→arena flow, byte-identical.

The fused path (``fused_ingest=True``) moves the same fragments through
the same stages as pooled scoring, one batch per tick instead of one
Python frame per fragment.  The contract is the strongest one the live
pipeline has: the verdict *stream* — every document, in order — must be
byte-identical to the pooled path's.
"""

import numpy as np
import pytest

from repro.engine.fleet import FleetScenarioSpec, SyntheticFleetSource
from repro.exceptions import ParameterError
from repro.live import (LiveConfig, offline_verdict_records,
                        parity_live_config, replay_scenario)
from repro.live.assessor import FUSED_BATCHES_METRIC, FUSED_ROWS_METRIC
from repro.live.queues import IngestQueues
from repro.telemetry.kpi import KpiKey
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import MINUTE, TimeSeries

SPEC = FleetScenarioSpec(n_services=3, n_servers=12, n_changes=4,
                         window_bins=120, change_offset=60,
                         history_days=1, seed=11)


def verdict_doc_key(doc):
    return sorted((k, repr(v)) for k, v in doc.items())


@pytest.fixture(scope="module")
def offline_records():
    return offline_verdict_records(SyntheticFleetSource(SPEC))


class TestFusedParity:
    def test_fused_equals_offline(self, offline_records):
        config = parity_live_config(SPEC, pooled_scoring=True,
                                    fused_ingest=True)
        report = replay_scenario(SPEC, live_config=config)
        assert report.live_records() == offline_records

    def test_fused_verdict_stream_byte_identical_to_pooled(self):
        """Raw stream equality — order included, every field included."""
        pooled = replay_scenario(
            SPEC, live_config=parity_live_config(SPEC, pooled_scoring=True))
        fused = replay_scenario(
            SPEC, live_config=parity_live_config(SPEC, pooled_scoring=True,
                                                 fused_ingest=True))
        assert [v.as_dict() for v in fused.verdicts] == \
            [v.as_dict() for v in pooled.verdicts]

    def test_fused_verdicts_match_per_detector(self):
        """Same documents as unpooled scoring; only intra-tick bus order
        is free (pooled emission happens after the drain)."""
        plain = replay_scenario(SPEC)
        fused = replay_scenario(
            SPEC, live_config=parity_live_config(SPEC, pooled_scoring=True,
                                                 fused_ingest=True))
        assert sorted((v.as_dict() for v in plain.verdicts),
                      key=verdict_doc_key) == \
            sorted((v.as_dict() for v in fused.verdicts),
                   key=verdict_doc_key)

    def test_fused_composes_with_chunking_and_batching(self,
                                                       offline_records):
        config = parity_live_config(SPEC, pooled_scoring=True,
                                    fused_ingest=True, score_chunk_bins=7)
        report = replay_scenario(SPEC, live_config=config, flush_bins=5)
        assert report.live_records() == offline_records

    def test_fused_actually_scatters(self):
        config = parity_live_config(SPEC, pooled_scoring=True,
                                    fused_ingest=True)
        report = replay_scenario(SPEC, live_config=config, flush_bins=5)
        counters = report.service_report["counters"]
        assert counters.get(FUSED_BATCHES_METRIC, 0) > 0
        assert counters.get(FUSED_ROWS_METRIC, 0) > 0

    def test_fused_requires_pooled_scoring(self):
        with pytest.raises(ParameterError):
            LiveConfig(fused_ingest=True, pooled_scoring=False)


class TestStoreBatchAppend:
    def _store(self):
        return MetricStore(bin_seconds=MINUTE)

    def _fragment(self, start=0, values=(1.0, 2.0)):
        return TimeSeries(start, MINUTE,
                          np.asarray(values, dtype=np.float64))

    def test_append_batch_ingests_like_sequential_appends(self):
        key_a = KpiKey("server", "a", "cpu")
        key_b = KpiKey("server", "b", "cpu")
        batched, sequential = self._store(), self._store()
        items = [(key_a, self._fragment(0)),
                 (key_b, self._fragment(0)),
                 (key_a, self._fragment(2 * MINUTE, (3.0, 4.0)))]
        batched.append_batch(items)
        for key, fragment in items:
            sequential.append(key, fragment)
        for key in (key_a, key_b):
            assert batched.series(key).values.tolist() == \
                sequential.series(key).values.tolist()
        assert batched.appended_fragments == sequential.appended_fragments

    def test_batch_callback_gets_matched_sublist(self):
        store = self._store()
        key_a = KpiKey("server", "a", "cpu")
        key_b = KpiKey("server", "b", "cpu")
        key_c = KpiKey("server", "c", "cpu")
        seen = []
        store.subscribe([key_a, key_b],
                        callback=lambda *a: seen.append(("item", a)),
                        batch_callback=lambda items: seen.append(
                            ("batch", list(items))))
        items = [(key_a, self._fragment(0)),
                 (key_c, self._fragment(0)),
                 (key_b, self._fragment(0))]
        store.append_batch(items)
        # One batch delivery with only the subscribed keys, in batch
        # order; the per-item callback is not used when a batch
        # callback exists.
        assert len(seen) == 1
        kind, delivered = seen[0]
        assert kind == "batch"
        assert [k for k, _ in delivered] == [key_a, key_b]

    def test_batch_append_without_batch_callback_falls_back(self):
        store = self._store()
        key = KpiKey("server", "a", "cpu")
        seen = []
        store.subscribe([key], callback=lambda k, f: seen.append(k))
        store.append_batch([(key, self._fragment(0)),
                            (key, self._fragment(2 * MINUTE))])
        assert seen == [key, key]

    def test_batch_ingest_precedes_every_push(self):
        """All fragments are durable before the first push fires, so a
        subscriber reading back the store sees the whole batch."""
        store = self._store()
        key_a = KpiKey("server", "a", "cpu")
        key_b = KpiKey("server", "b", "cpu")
        lengths = []
        store.subscribe(
            [key_a], callback=None,
            batch_callback=lambda items: lengths.append(
                store.series(key_b).values.size))
        store.append_batch([(key_a, self._fragment(0)),
                            (key_b, self._fragment(0))])
        assert lengths == [2]


class TestQueueBatchOps:
    def _key(self, name):
        return KpiKey("server", name, "cpu")

    def _fragment(self, start=0):
        return TimeSeries(start, MINUTE, np.array([1.0]))

    def test_drain_batch_equals_drain(self):
        a, b = IngestQueues(8), IngestQueues(8)
        for queues in (a, b):
            for name in ("s1", "s2", "s3"):
                for i in range(3):
                    queues.offer(self._key(name),
                                 self._fragment(i * MINUTE))
        assert a.drain_batch(budget=4) == list(b.drain(budget=4))
        assert a.drain_batch() == list(b.drain())
        assert a.depth == b.depth == 0

    def test_offer_batch_counts_once_and_sheds_like_offer(self):
        queues = IngestQueues(2)
        key = self._key("s1")
        accepted = queues.offer_batch(
            [(key, self._fragment(i * MINUTE)) for i in range(4)])
        # drop_oldest keeps accepting (evicting the stalest), so all 4
        # offers are accepted and 2 fragments were shed.
        assert accepted == 4
        assert queues.depth == 2
        assert queues.shed == 2

    def test_key_cache_rebuilt_on_churn(self):
        """New keys between drains must enter the rotation — the cached
        sort cannot go stale (the regression the size check guards)."""
        queues = IngestQueues(8)
        queues.offer(self._key("s1"), self._fragment())
        assert [str(k) for k, _ in queues.drain_batch()] == \
            ["server:s1:cpu"]
        cached = queues._sorted_keys
        queues.offer(self._key("s0"), self._fragment())
        drained = [str(k) for k, _ in queues.drain_batch()]
        assert drained == ["server:s0:cpu"]
        assert queues._sorted_keys is not cached

    def test_key_cache_reused_when_keyset_stable(self):
        queues = IngestQueues(8)
        for name in ("s1", "s2"):
            queues.offer(self._key(name), self._fragment())
        queues.drain_batch()
        cached = queues._sorted_keys
        for name in ("s1", "s2"):
            queues.offer(self._key(name), self._fragment(MINUTE))
        queues.drain_batch()
        assert queues._sorted_keys is cached

    def test_budgeted_fairness_survives_churn(self):
        """Round-robin under budget stays fair while keys churn: the
        rotation resumes after the last-served key even when the key
        set grew since the previous drain."""
        queues = IngestQueues(8)
        for name in ("s1", "s3"):
            for i in range(2):
                queues.offer(self._key(name), self._fragment(i * MINUTE))
        first = [str(k) for k, _ in queues.drain_batch(budget=2)]
        assert first == ["server:s1:cpu", "server:s3:cpu"]
        # A new key lands between drains, sorted between the existing
        # two; the cursor (after s3) wraps to the front of the order.
        for i in range(2):
            queues.offer(self._key("s2"), self._fragment(i * MINUTE))
        second = [str(k) for k, _ in queues.drain_batch(budget=3)]
        assert second == ["server:s1:cpu", "server:s2:cpu",
                          "server:s3:cpu"]
