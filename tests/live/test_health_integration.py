"""The health telemetry loop against the real live pipeline.

The acceptance contract has three legs:

* **parity safety** — a replay with health enabled writes a verdict
  JSONL *byte-identical* to a health-off run (telemetry reads state,
  never steers it);
* **zero false positives** — a fault-free replay's FUNNEL-on-FUNNEL
  self-assessment declares nothing (its default KPIs are constant in a
  healthy virtual-time replay);
* **real detection** — a mid-run ``agent-silence`` outage is detected
  on the assessor's *own* KPI series, while the verdict stream still
  matches the offline engine.
"""

import json
import os

import pytest

from repro.engine.fleet import FleetScenarioSpec
from repro.faults import preset_plan
from repro.live import JsonlVerdictSink, parity_live_config, replay_scenario
from repro.obs.health import (DETECTION_KIND, HEARTBEAT_KIND, SUMMARY_KIND,
                              HealthConfig, HealthMonitor, load_heartbeat)
from repro.telemetry.timeseries import MINUTE

SPEC = FleetScenarioSpec(n_services=2, n_servers=8, n_changes=2,
                         window_bins=120, change_offset=60,
                         history_days=1, seed=7)


def _monitor(tmp_path, **overrides):
    return HealthMonitor(HealthConfig(
        heartbeat_path=str(tmp_path / "heartbeat.jsonl"), **overrides))


def _silence_plan(offset_bins=100, seed=11):
    return preset_plan("agent-silence", seed=seed,
                       lead_time=SPEC.lead_bins * MINUTE,
                       bin_seconds=MINUTE, offset_bins=offset_bins)


class TestParitySafety:
    def test_verdict_jsonl_is_byte_identical(self, tmp_path):
        paths = {}
        for mode in ("off", "on"):
            paths[mode] = str(tmp_path / ("verdicts_%s.jsonl" % mode))
            health = _monitor(tmp_path) if mode == "on" else None
            with JsonlVerdictSink(paths[mode]) as sink:
                replay_scenario(SPEC, sink=sink, health=health)
        with open(paths["off"], "rb") as off, open(paths["on"], "rb") as on:
            assert off.read() == on.read()

    def test_health_does_not_disturb_offline_parity(self, tmp_path):
        report = replay_scenario(SPEC, check_offline=True,
                                 health=_monitor(tmp_path))
        assert report.parity_ok is True


class TestFaultFreeRun:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("healthy")
        report = replay_scenario(SPEC, health=_monitor(tmp_path))
        return report, load_heartbeat(str(tmp_path / "heartbeat.jsonl"))

    def test_no_self_detections(self, run):
        report, records = run
        assert report.service_report["health"]["self_detections"] == []
        assert [r for r in records
                if r.get("kind") == DETECTION_KIND] == []

    def test_one_heartbeat_per_tick(self, run):
        report, records = run
        beats = [r for r in records if r.get("kind") == HEARTBEAT_KIND]
        assert len(beats) == report.ticks
        assert [b["tick"] for b in beats] == \
            list(range(1, report.ticks + 1))

    def test_heartbeat_records_carry_the_pipeline_signals(self, run):
        report, records = run
        beats = [r for r in records if r.get("kind") == HEARTBEAT_KIND]
        # Ingest deltas account for every streamed fragment.
        assert sum(b["ingest_fragments"] for b in beats) == \
            report.fragments_streamed
        # Verdict deltas account for every published verdict.
        assert sum(b["verdicts"] for b in beats) == len(report.verdicts)
        # A healthy replay never lags, queues or sheds.
        assert all(b["watermark_lag_bins"] == 0 for b in beats)
        assert all(b["queue_depth"] == 0 for b in beats)
        assert all(b["shed_fragments"] == 0 for b in beats)
        # Once verdicts flow, the lag histogram reports a percentile.
        assert beats[-1]["verdict_lag_p99_bins"] is not None

    def test_summary_record_closes_the_stream(self, run):
        report, records = run
        assert records[-1]["kind"] == SUMMARY_KIND
        summary = report.service_report["health"]
        assert summary["ticks"] == report.ticks
        assert summary["alerts_fired"] == 0
        assert summary["heartbeat_dropped"] == 0
        for doc in summary["slos"].values():
            assert doc["attainment"] == 1.0

    def test_report_embeds_health_section(self, run):
        report, _ = run
        assert "health" in report.service_report
        # Health-off reports must not grow the section.
        plain = replay_scenario(SPEC)
        assert "health" not in plain.service_report


class TestChaosSelfDetection:
    @pytest.fixture(scope="class")
    def chaos_run(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("chaos")
        config = parity_live_config(SPEC, repair_from_store=True)
        report = replay_scenario(SPEC, live_config=config,
                                 fault_plan=_silence_plan(),
                                 check_offline=True,
                                 health=_monitor(tmp_path))
        return report, load_heartbeat(str(tmp_path / "heartbeat.jsonl"))

    def test_outage_is_self_detected(self, chaos_run):
        report, records = chaos_run
        detections = report.service_report["health"]["self_detections"]
        assert len(detections) >= 1
        by_kpi = {d["kpi"]: d for d in detections}
        # The silenced agents dent the ingest rate; the dip starts at
        # the fault's offset bin.
        assert "ingest_fragments" in by_kpi
        dip = by_kpi["ingest_fragments"]
        assert dip["direction"] == -1
        assert 95 <= dip["start_tick"] <= 105
        # Detection records also land on the heartbeat stream.
        streamed = [r for r in records
                    if r.get("kind") == DETECTION_KIND]
        assert {d["kpi"] for d in streamed} == set(by_kpi)

    def test_parity_survives_the_detected_outage(self, chaos_run):
        report, _ = chaos_run
        assert report.parity_ok is True

    def test_same_fault_without_health_has_no_cost(self):
        config = parity_live_config(SPEC, repair_from_store=True)
        report = replay_scenario(SPEC, live_config=config,
                                 fault_plan=_silence_plan(),
                                 check_offline=True)
        assert report.parity_ok is True
        assert "health" not in report.service_report


class TestMonitorMechanics:
    def test_heartbeats_flush_incrementally(self, tmp_path):
        health = _monitor(tmp_path, flush_every_ticks=8)
        replay_scenario(SPEC, health=health)
        assert health.writer.written >= 240
        assert health.writer.dropped == 0

    def test_killed_run_leaves_truncated_stream(self, tmp_path):
        health = _monitor(tmp_path, flush_every_ticks=8)
        report = replay_scenario(SPEC, health=health,
                                 kill_after_ticks=40)
        assert report.killed
        path = str(tmp_path / "heartbeat.jsonl")
        assert os.path.exists(path)
        records = load_heartbeat(path)
        # No summary record — the run never shut down cleanly — but the
        # flushed heartbeats survive for post-mortem health-report.
        assert all(r["kind"] != SUMMARY_KIND for r in records)
        assert any(r["kind"] == HEARTBEAT_KIND for r in records)
        assert not health.finalized

    def test_self_assessment_can_be_disabled(self, tmp_path):
        health = _monitor(tmp_path, self_assess=False)
        report = replay_scenario(SPEC, health=health)
        assert report.service_report["health"]["self_detections"] == []
        assert health.self_assessor is None

    def test_finalize_is_idempotent(self, tmp_path):
        health = _monitor(tmp_path)
        replay_scenario(SPEC, health=health)
        first = health.summary()
        assert health.finalize() == first

    def test_heartbeat_lines_are_valid_sorted_json(self, tmp_path):
        replay_scenario(SPEC, health=_monitor(tmp_path))
        with open(str(tmp_path / "heartbeat.jsonl")) as fh:
            for line in fh:
                doc = json.loads(line)
                assert line == json.dumps(doc, sort_keys=True) + "\n"
