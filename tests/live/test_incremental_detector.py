"""The streaming detector must match the offline FUNNEL bit for bit."""

import numpy as np
import pytest

from repro.core.funnel import Funnel, FunnelConfig
from repro.live.detector import IncrementalDetector


def offline_first_declaration(series, change_index, config=None):
    changes = Funnel(config).detect(series, change_index)
    return changes[0] if changes else None


def stream(series, change_index, chunk_schedule, config=None,
           score_chunk_bins=1):
    """Feed ``series`` in pieces; returns (detector, declaration)."""
    detector = IncrementalDetector(change_index, config,
                                   score_chunk_bins=score_chunk_bins)
    declared = None
    position = 0
    for size in chunk_schedule:
        piece = series[position:position + size]
        if piece.size == 0:
            break
        result = detector.extend(piece)
        if declared is None:
            declared = result
        position += size
    if declared is None:
        declared = detector.flush()
    return detector, declared


def constant_chunks(total, size):
    out = []
    remaining = total
    while remaining > 0:
        out.append(min(size, remaining))
        remaining -= size
    return out


class TestDeclarationParity:
    @pytest.mark.parametrize("push_size", [1, 4, 9, 37])
    def test_shift_series_matches_offline(self, rng, push_size):
        x = 50.0 + rng.normal(0, 1.0, size=240)
        x[80:] += 7.0
        offline = offline_first_declaration(x, 80)
        assert offline is not None
        _, live = stream(x, 80, constant_chunks(240, push_size))
        assert live is not None
        assert (live.index, live.start_index, live.direction) == \
            (offline.index, offline.start_index, offline.direction)

    @pytest.mark.parametrize("push_size", [1, 7])
    def test_quiet_series_declares_nothing(self, rng, push_size):
        x = 50.0 + rng.normal(0, 1.0, size=240)
        _, live = stream(x, 80, constant_chunks(240, push_size))
        assert live is None
        assert offline_first_declaration(x, 80) is None

    def test_pre_existing_change_filtered(self, rng):
        # A shift well before the software change: offline filters it
        # (start_index < change_index - 1) and so must the live scan.
        x = 50.0 + rng.normal(0, 1.0, size=240)
        x[30:] += 7.0
        offline = offline_first_declaration(x, 80)
        _, live = stream(x, 80, constant_chunks(240, 1))
        if offline is None:
            assert live is None
        else:
            assert live is not None
            assert live.index == offline.index

    def test_randomised_parity_sweep(self, rng):
        mismatches = 0
        for trial in range(20):
            x = 50.0 + rng.normal(0, 1.0, size=220)
            case = trial % 3
            if case == 0:
                x[70:] += 6.5          # genuine impact at the change
            elif case == 1:
                pass                    # no impact
            else:
                x[110:135] += np.linspace(0.3, 6.0, 25)  # late ramp
                x[135:] += 6.0
            offline = offline_first_declaration(x, 70)
            sizes = rng.integers(1, 12, size=220)
            _, live = stream(x, 70, [int(s) for s in sizes])
            if (offline is None) != (live is None):
                mismatches += 1
            elif offline is not None and (
                    (live.index, live.start_index, live.direction)
                    != (offline.index, offline.start_index,
                        offline.direction)):
                mismatches += 1
        assert mismatches == 0


class TestScores:
    def test_scores_bitwise_equal_to_offline(self, rng):
        from repro.core.scoring import robust_normalise
        x = 50.0 + rng.normal(0, 1.0, size=240)
        x[80:] += 7.0
        config = FunnelConfig()
        normalised = robust_normalise(x, baseline=80)
        offline_scores = Funnel(config).scorer.scores(normalised)
        detector, _ = stream(x, 80, constant_chunks(240, 1), config)
        live_scores = detector.scores
        # Everything computable live must equal the offline array; the
        # offline tail past the last computable position is zero-filled
        # on both sides.
        assert np.array_equal(live_scores, offline_scores)

    @pytest.mark.parametrize("chunk", [4, 9])
    def test_chunking_changes_nothing(self, rng, chunk):
        x = 50.0 + rng.normal(0, 1.0, size=240)
        x[80:] += 7.0
        _, plain = stream(x, 80, constant_chunks(240, 1))
        _, chunked = stream(x, 80, constant_chunks(240, 1),
                            score_chunk_bins=chunk)
        assert plain is not None and chunked is not None
        assert (plain.index, plain.start_index) == \
            (chunked.index, chunked.start_index)


class TestFlush:
    def test_flush_scores_the_remainder(self, rng):
        # With a large chunk the declaration only becomes visible when
        # the deadline flush scores the outstanding bins.
        x = 50.0 + rng.normal(0, 1.0, size=150)
        x[80:] += 7.0
        detector = IncrementalDetector(80, score_chunk_bins=64)
        declared = None
        for value in x:
            declared = declared or detector.extend(np.array([value]))
        if declared is None:
            declared = detector.flush()
        offline = offline_first_declaration(x, 80)
        assert (declared is None) == (offline is None)
        if offline is not None:
            assert declared.index == offline.index

    def test_flush_without_stats_is_safe(self):
        detector = IncrementalDetector(80)
        assert detector.flush() is None

    def test_declares_only_once(self, rng):
        x = 50.0 + rng.normal(0, 1.0, size=240)
        x[80:] += 7.0
        detector = IncrementalDetector(80)
        declarations = []
        for value in x:
            result = detector.extend(np.array([value]))
            if result is not None:
                declarations.append(result)
        assert len(declarations) == 1
        assert detector.flush() is None
