"""The ISSUE's acceptance gate: live verdicts == offline verdicts.

Live and offline must agree on the full record set
``(change_id, entity_type, entity, metric, verdict, declaration_bin)``
for the same scenario.  ``score`` and ``kind`` are excluded by contract:
offline computes them from samples after the declaration bin.
"""

import pytest

from repro.engine.fleet import FleetScenarioSpec, SyntheticFleetSource
from repro.live import (offline_verdict_records, parity_live_config,
                        replay_scenario)

SPEC = FleetScenarioSpec(n_services=3, n_servers=12, n_changes=4,
                         window_bins=120, change_offset=60,
                         history_days=1, seed=11)


@pytest.fixture(scope="module")
def offline_records():
    return offline_verdict_records(SyntheticFleetSource(SPEC))


class TestParity:
    def test_live_equals_offline(self, offline_records):
        report = replay_scenario(SPEC)
        assert report.live_records() == offline_records

    def test_parity_survives_fragment_batching(self, offline_records):
        report = replay_scenario(SPEC, flush_bins=5)
        assert report.live_records() == offline_records

    def test_parity_survives_score_chunking(self, offline_records):
        config = parity_live_config(SPEC, score_chunk_bins=7)
        report = replay_scenario(SPEC, live_config=config)
        assert report.live_records() == offline_records

    def test_check_offline_flag_agrees(self):
        report = replay_scenario(SPEC, check_offline=True)
        assert report.parity_ok is True
        assert report.parity["live_only"] == []
        assert report.parity["offline_only"] == []

    def test_verdict_count_matches_job_count(self, offline_records):
        report = replay_scenario(SPEC)
        assert len(report.verdicts) == len(offline_records)


class TestPooledScoringParity:
    """Pooled (stacked cross-detector) scoring is a throughput mode:
    the verdict stream must be identical to per-detector scoring —
    field for field, not merely as parity records."""

    def test_pooled_equals_offline(self, offline_records):
        config = parity_live_config(SPEC, pooled_scoring=True)
        report = replay_scenario(SPEC, live_config=config)
        assert report.live_records() == offline_records

    def test_pooled_verdicts_bit_identical_to_per_detector(self):
        """Same verdict *documents* — every field including emitted_at
        and did_estimate — with only intra-tick bus order free to
        differ (per-detector emits mid-drain, pooled after the drain)."""
        plain = replay_scenario(SPEC)
        pooled = replay_scenario(
            SPEC, live_config=parity_live_config(SPEC, pooled_scoring=True))
        key = lambda doc: sorted((k, repr(v)) for k, v in doc.items())
        assert sorted((v.as_dict() for v in plain.verdicts), key=key) == \
            sorted((v.as_dict() for v in pooled.verdicts), key=key)

    def test_pooled_composes_with_chunking_and_batching(self,
                                                        offline_records):
        config = parity_live_config(SPEC, pooled_scoring=True,
                                    score_chunk_bins=7)
        report = replay_scenario(SPEC, live_config=config, flush_bins=5)
        assert report.live_records() == offline_records

    def test_pool_actually_stacks(self):
        from repro.live.pool import (POOLED_BATCHES_METRIC,
                                     POOLED_SERIES_METRIC)
        config = parity_live_config(SPEC, pooled_scoring=True)
        report = replay_scenario(SPEC, live_config=config)
        counters = report.service_report["counters"]
        batches = counters[POOLED_BATCHES_METRIC]
        series = counters[POOLED_SERIES_METRIC]
        assert batches > 0
        # The whole point: many detector segments per scoring call.
        assert series / batches > 1.0
