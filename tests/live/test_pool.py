"""Unit tests for the cross-detector scoring pool."""

import numpy as np

from repro.live import DetectorPool, IncrementalDetector
from repro.live.pool import POOLED_BATCHES_METRIC, POOLED_SERIES_METRIC
from repro.obs.metrics import MetricsRegistry


def _detector(seed, n=150, change_index=80, step=0.0):
    rng = np.random.default_rng(seed)
    x = 10.0 + rng.normal(0, 0.5, size=n)
    if step:
        x[change_index:] += step
    detector = IncrementalDetector(change_index, deferred_scoring=True)
    detector.extend(x)
    return detector, x


class TestDetectorPool:
    def test_pooled_scores_match_per_detector(self):
        pooled = [_detector(seed, step=5.0 * (seed % 2))
                  for seed in range(5)]
        pool = DetectorPool()
        declared = pool.score_pending([d for d, _ in pooled])
        for (detector, x), _ in zip(pooled, range(len(pooled))):
            solo = IncrementalDetector(detector.change_index)
            solo.extend(x)
            np.testing.assert_array_equal(detector.scores, solo.scores)
            assert detector.declared == solo.declared
        declared_indices = {index for index, _ in declared}
        for i, (detector, _) in enumerate(pooled):
            assert (i in declared_indices) == \
                (detector.declared is not None)

    def test_mixed_lengths_score_in_separate_stacks(self):
        short, x_short = _detector(1, n=110, step=5.0)
        long, x_long = _detector(2, n=160, step=5.0)
        registry = MetricsRegistry()
        pool = DetectorPool(registry)
        pool.score_pending([short, long])
        counters = registry.snapshot()["counters"]
        batches = sum(e["value"]
                      for e in counters[POOLED_BATCHES_METRIC]["values"])
        series = sum(e["value"]
                     for e in counters[POOLED_SERIES_METRIC]["values"])
        assert batches == 2          # one stack per segment length
        assert series == 2
        for detector, x in ((short, x_short), (long, x_long)):
            solo = IncrementalDetector(detector.change_index)
            solo.extend(x)
            np.testing.assert_array_equal(detector.scores, solo.scores)

    def test_nothing_pending_is_a_noop(self):
        detector, _ = _detector(3)
        pool = DetectorPool()
        pool.score_pending([detector])
        registry = MetricsRegistry()
        counted = DetectorPool(registry)
        assert counted.score_pending([detector]) == []
        assert POOLED_BATCHES_METRIC not in \
            registry.snapshot()["counters"]

    def test_declared_detector_is_skipped(self):
        detector, _ = _detector(4, step=6.0)
        pool = DetectorPool()
        declared = pool.score_pending([detector])
        assert declared and detector.declared is not None
        # More data arrives; the detector is done declaring.
        detector.extend(np.full(10, 10.0))
        assert detector.pending_segment() is None
        assert pool.score_pending([detector]) == []
