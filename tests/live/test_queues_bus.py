"""Bounded queues, the verdict bus, and the live configuration."""

import json

import pytest

from repro.exceptions import ParameterError
from repro.live.bus import JsonlVerdictSink, LiveVerdict, VerdictBus
from repro.live.config import DROP_NEWEST, DROP_OLDEST, LiveConfig
from repro.live.queues import (FRAGMENTS_METRIC, SHED_FRAGMENTS_METRIC,
                               IngestQueues)
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.kpi import KpiKey
from repro.telemetry.timeseries import TimeSeries


def frag(start, *values):
    return TimeSeries(start, 60, list(values))


@pytest.fixture
def key():
    return KpiKey("server", "web-1", "memory_utilization")


@pytest.fixture
def key2():
    return KpiKey("server", "web-2", "memory_utilization")


class TestIngestQueues:
    def test_offer_and_drain_fifo(self, key):
        queues = IngestQueues(capacity=4)
        for i in range(3):
            assert queues.offer(key, frag(i * 60, float(i)))
        drained = list(queues.drain())
        assert [f.start for _, f in drained] == [0, 60, 120]
        assert queues.depth == 0

    def test_drop_oldest_evicts_stalest(self, key):
        queues = IngestQueues(capacity=2, policy=DROP_OLDEST)
        for i in range(4):
            queues.offer(key, frag(i * 60, float(i)))
        starts = [f.start for _, f in queues.drain()]
        assert starts == [120, 180]        # freshest survive
        assert queues.shed == 2

    def test_drop_newest_sheds_arrival(self, key):
        queues = IngestQueues(capacity=2, policy=DROP_NEWEST)
        assert queues.offer(key, frag(0, 1.0))
        assert queues.offer(key, frag(60, 2.0))
        assert not queues.offer(key, frag(120, 3.0))
        starts = [f.start for _, f in queues.drain()]
        assert starts == [0, 60]
        assert queues.shed == 1

    def test_budget_limits_a_drain(self, key, key2):
        queues = IngestQueues(capacity=8)
        for i in range(3):
            queues.offer(key, frag(i * 60, 1.0))
            queues.offer(key2, frag(i * 60, 2.0))
        first = list(queues.drain(budget=4))
        assert len(first) == 4
        assert queues.depth == 2
        rest = list(queues.drain())
        assert len(rest) == 2

    def test_budgeted_drain_rotates_across_keys(self, key, key2):
        # With budget 1 per drain, successive drains must alternate
        # keys instead of starving the later one in sort order.
        queues = IngestQueues(capacity=8)
        for i in range(2):
            queues.offer(key, frag(i * 60, 1.0))
            queues.offer(key2, frag(i * 60, 2.0))
        served = [k for drain in range(4)
                  for k, _ in queues.drain(budget=1)]
        assert set(served) == {key, key2}

    def test_rotation_survives_keyset_changes(self):
        # Regression: the rotation cursor used to be a stored *index*
        # into the sorted key list, so a key arriving earlier in sort
        # order silently re-aimed it.  Remembering the last-served *key*
        # keeps successive budgeted drains fair through churn.
        a = KpiKey("server", "a-1", "memory_utilization")
        b = KpiKey("server", "b-1", "memory_utilization")
        c = KpiKey("server", "c-1", "memory_utilization")
        queues = IngestQueues(capacity=8)
        for i in range(2):
            queues.offer(b, frag(i * 60, 1.0))
            queues.offer(c, frag(i * 60, 1.0))
        assert [k for k, _ in queues.drain(budget=1)] == [b]
        queues.offer(a, frag(0, 1.0))    # new key ahead of b in order
        assert [k for k, _ in queues.drain(budget=1)] == [c]
        assert [k for k, _ in queues.drain(budget=1)] == [a]

    def test_rotation_survives_a_vanished_cursor_key(self, key, key2):
        queues = IngestQueues(capacity=8)
        queues.offer(key, frag(0, 1.0))
        queues.offer(key2, frag(0, 2.0))
        assert [k for k, _ in queues.drain(budget=1)] == [key]
        # the cursor key's queue is now empty; the next drain must not
        # serve it again while key2 still waits
        assert [k for k, _ in queues.drain(budget=1)] == [key2]

    def test_discard_counts_shed(self, key):
        metrics = MetricsRegistry()
        queues = IngestQueues(capacity=8, metrics=metrics)
        for i in range(3):
            queues.offer(key, frag(i * 60, 1.0))
        assert queues.discard() == 3
        assert queues.depth == 0
        counter = metrics.counter(SHED_FRAGMENTS_METRIC)
        assert counter.value(policy="close") == 3

    def test_fragment_counter(self, key):
        metrics = MetricsRegistry()
        queues = IngestQueues(capacity=8, metrics=metrics)
        queues.offer(key, frag(0, 1.0))
        queues.offer(key, frag(60, 1.0))
        assert metrics.counter(FRAGMENTS_METRIC).total() == 2


def verdict(change="chg-1", entity="web-1", verdict_value="no_change",
            reason="deadline"):
    return LiveVerdict(change_id=change, entity_type="server",
                       entity=entity, metric="memory_utilization",
                       verdict=verdict_value, reason=reason,
                       emitted_at=600)


class TestVerdictBus:
    def test_publish_and_fanout(self):
        bus = VerdictBus()
        seen = []
        bus.subscribe(seen.append)
        assert bus.publish(verdict())
        assert len(bus) == 1
        assert seen[0].change_id == "chg-1"

    def test_at_most_once_per_key(self):
        bus = VerdictBus()
        assert bus.publish(verdict())
        assert not bus.publish(verdict(verdict_value="caused_by_change"))
        assert len(bus) == 1
        assert bus.verdicts[0].verdict == "no_change"

    def test_failing_subscriber_cannot_cause_redelivery(self):
        bus = VerdictBus()
        bus.subscribe(lambda v: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError):
            bus.publish(verdict())
        # The key was marked seen before delivery: retrying is a no-op.
        assert not bus.publish(verdict())
        assert len(bus) == 1

    def test_distinct_entities_both_delivered(self):
        bus = VerdictBus()
        assert bus.publish(verdict(entity="web-1"))
        assert bus.publish(verdict(entity="web-2"))
        assert len(bus) == 2


class TestJsonlVerdictSink:
    def test_writes_one_line_per_verdict(self, tmp_path):
        path = tmp_path / "verdicts.jsonl"
        with JsonlVerdictSink(str(path)) as sink:
            bus = VerdictBus()
            bus.subscribe(sink)
            bus.publish(verdict(entity="web-1"))
            bus.publish(verdict(entity="web-2"))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        doc = json.loads(lines[0])
        assert doc["entity"] == "web-1"
        assert doc["reason"] == "deadline"

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlVerdictSink(str(tmp_path / "v.jsonl"))
        sink.close()
        sink.close()
        sink(verdict())  # after close: silently ignored
        assert sink.written == 0


class TestLiveConfig:
    def test_defaults_valid(self):
        config = LiveConfig()
        assert config.assessment_window_seconds == 3600
        assert config.drop_policy == DROP_OLDEST

    @pytest.mark.parametrize("kwargs", [
        {"assessment_window_seconds": 0},
        {"baseline_bins": 0},
        {"queue_capacity": 0},
        {"drop_policy": "drop_random"},
        {"max_fragments_per_tick": -1},
        {"max_active_changes": -1},
        {"max_control_units": 0},
        {"history_days": -1},
        {"score_chunk_bins": 0},
        {"fetch_retries": -1},
        {"fetch_backoff_seconds": -0.5},
        {"fetch_timeout_seconds": -0.5},
        {"close_grace_seconds": -1},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ParameterError):
            LiveConfig(**kwargs)
