"""End-to-end behaviour of the live service: replay, overload, caps."""

import pytest

from repro.engine.fleet import FleetScenarioSpec
from repro.live import parity_live_config, replay_scenario
from repro.live.assessor import GAP_BINS_METRIC
from repro.live.queues import SHED_FRAGMENTS_METRIC
from repro.live.watcher import SHED_CHANGES_METRIC
from repro.obs.context import ObsContext


SMALL = FleetScenarioSpec(n_services=2, n_servers=8, n_changes=2,
                          window_bins=120, change_offset=60,
                          history_days=1, seed=5)


@pytest.fixture(scope="module")
def small_replay():
    return replay_scenario(SMALL)


class TestReplay:
    def test_every_job_gets_exactly_one_verdict(self, small_replay):
        keys = [v.key for v in small_replay.verdicts]
        assert len(keys) == len(set(keys))
        # every change produced at least (tservers + service) verdicts
        by_change = {}
        for v in small_replay.verdicts:
            by_change.setdefault(v.change_id, []).append(v)
        assert set(by_change) == {"chg-0000", "chg-0001"}

    def test_all_sessions_closed_and_unsubscribed(self, small_replay):
        report = small_replay.service_report
        assert report["active_changes"] == 0
        assert report["closed_changes"] == 2
        assert report["queue_depth"] == 0

    def test_reasons_are_declared_or_deadline(self, small_replay):
        assert set(v.reason for v in small_replay.verdicts) <= \
            {"declared", "deadline"}

    def test_declared_verdicts_carry_declaration_bin(self, small_replay):
        for v in small_replay.verdicts:
            if v.reason == "declared":
                assert v.declaration_bin is not None
                assert v.verdict != "no_change"
            else:
                assert v.declaration_bin is None
                assert v.verdict == "no_change"

    def test_detection_lag_is_positive_and_bounded(self, small_replay):
        for lag in small_replay.detection_lag_bins:
            assert 0 <= lag <= SMALL.window_bins - SMALL.change_offset

    def test_flush_bins_batches_fragments(self):
        batched = replay_scenario(SMALL, flush_bins=5)
        assert batched.fragments_streamed * 5 >= \
            replay_scenario(SMALL).fragments_streamed
        assert sorted(v.parity_tuple() for v in batched.verdicts)


class TestObsIntegration:
    def test_spans_and_metrics_recorded(self):
        obs = ObsContext()
        report = replay_scenario(SMALL, obs=obs)
        names = [span.name for span in obs.spans()]
        assert names.count("live_replay") == 1
        assert names.count("live_change") == 2
        counters = obs.metrics.snapshot()["counters"]
        assert "repro_live_verdicts_total" in counters
        assert report.service_report["counters"][
            "repro_live_changes_admitted_total"] == 2


class TestOverload:
    def test_shedding_keeps_memory_bounded(self):
        config = parity_live_config(SMALL, queue_capacity=2,
                                    max_fragments_per_tick=8)
        report = replay_scenario(SMALL, live_config=config)
        counters = report.service_report["counters"]
        assert counters.get(SHED_FRAGMENTS_METRIC, 0) > 0
        assert counters.get(GAP_BINS_METRIC, 0) > 0
        # bounded: no queue can exceed capacity x subscribed keys
        assert report.service_report["peak_queue_depth"] <= 2 * 64
        # every item still closes with a verdict, degraded ones as gaps
        assert any(v.reason == "gap" for v in report.verdicts)
        assert report.service_report["active_changes"] == 0

    def test_drop_newest_policy_sheds_arrivals(self):
        config = parity_live_config(SMALL, queue_capacity=1,
                                    drop_policy="drop_newest",
                                    max_fragments_per_tick=4)
        report = replay_scenario(SMALL, live_config=config)
        assert report.service_report["counters"].get(
            SHED_FRAGMENTS_METRIC, 0) > 0


class TestAdmissionControl:
    # Overlapping sessions need an assessment window reaching past the
    # next change's deployment; window 120, change offset 60 -> 120
    # extra bins cover the following change.
    OVERLAP = FleetScenarioSpec(n_services=3, n_servers=12, n_changes=3,
                                window_bins=120, change_offset=60,
                                history_days=1, seed=11)

    def _config(self, **overrides):
        return parity_live_config(
            self.OVERLAP,
            assessment_window_seconds=(120 - 60 + 120) * 60,
            **overrides)

    def test_cap_sheds_whole_changes(self):
        report = replay_scenario(self.OVERLAP,
                                 live_config=self._config(
                                     max_active_changes=1))
        sr = report.service_report
        assert sr["shed_change_ids"]
        assert sr["counters"].get(SHED_CHANGES_METRIC, 0) >= 1
        shed = set(sr["shed_change_ids"])
        emitted = set(v.change_id for v in report.verdicts)
        assert not (shed & emitted)

    def test_uncapped_assesses_everything(self):
        report = replay_scenario(self.OVERLAP, live_config=self._config())
        assert not report.service_report["shed_change_ids"]
        assert len(set(v.change_id for v in report.verdicts)) == 3
