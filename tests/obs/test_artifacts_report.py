"""Run-artifact round-trips and the ``repro obs report`` golden output."""

import json
import os

import pytest

from repro.cli import main
from repro.obs import (ObsContext, SpanRecord, build_profile, folded_stacks,
                       load_run, render_table, write_run_artifacts)


def rec(span_id, parent_id, name, dur, **attrs):
    return SpanRecord(trace_id="t1", span_id=span_id, parent_id=parent_id,
                      name=name, start_unix=1000.0, duration_s=dur,
                      attrs=tuple(sorted(attrs.items())))


#: A tiny but fully-shaped engine trace: execute > batch > job > stages.
FIXTURE_SPANS = [
    rec("s1", None, "execute", 1.0, workers=0, batch_size=16),
    rec("s2", "s1", "batch", 0.9, batch=0, jobs=2),
    rec("s3", "s2", "job", 0.5, detector="funnel", job_id=1,
        entity="web-1", metric="cpu"),
    rec("s4", "s3", "detect", 0.4, detector="funnel"),
    rec("s5", "s2", "job", 0.3, detector="funnel", job_id=2,
        entity="web-2", metric="mem"),
    rec("s6", "s5", "detect", 0.2, detector="funnel"),
    rec("s7", "s5", "attribute", 0.05, detector="funnel"),
]

GOLDEN_TABLE = """\
Stage breakdown (7 spans)
stage                                calls    total_s     self_s
execute                                  1     1.0000     0.1000
  batch                                  1     0.9000     0.1000
    job                                  2     0.8000     0.1500
      detect                             2     0.6000     0.6000
      attribute                          1     0.0500     0.0500

Per-detector
detector          jobs      job_s   detect_s   attrib_s
funnel               2     0.8000     0.6000     0.0500

Slowest jobs
  job_id detector       entity                 metric                      seconds
       1 funnel         web-1                  cpu                          0.5000
       2 funnel         web-2                  mem                          0.3000
"""

GOLDEN_FOLDED = [
    "execute 100000",
    "execute;batch 100000",
    "execute;batch;job 150000",
    "execute;batch;job;attribute 50000",
    "execute;batch;job;detect 600000",
]


def _observed_context():
    obs = ObsContext()
    with obs.tracer.span("execute", workers=2):
        with obs.tracer.span("batch", batch=0):
            obs.tracer.record("job", 0.25, detector="funnel", job_id=0)
    obs.metrics.counter("repro_engine_jobs_total",
                        help="Jobs.").inc(1, detector="funnel")
    obs.metrics.histogram("repro_engine_detect_seconds",
                          buckets=(0.1, 1.0)).observe(0.25,
                                                      detector="funnel")
    return obs


class TestArtifactsRoundTrip:
    def test_jsonl_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.obs.artifacts.git_revision",
                            lambda cwd=None: "abc123")
        obs = _observed_context()
        written = write_run_artifacts(
            str(tmp_path), obs, config={"workers": 2},
            seeds={"scenario": 7}, stages={"execute": {"seconds": 0.3}},
            run_id="rt-run", unix_time=1000.0)

        assert written["span_count"] == 3
        assert os.path.exists(written["events"])
        assert os.path.exists(written["manifest"])

        run = load_run(str(tmp_path))
        assert run.run_id == "rt-run"
        assert run.manifest["git_rev"] == "abc123"
        assert run.manifest["config"] == {"workers": 2}
        assert run.manifest["seeds"] == {"scenario": 7}
        assert run.manifest["unix_time"] == 1000.0
        assert ([s.as_dict() for s in run.spans]
                == [s.as_dict() for s in obs.spans()])
        assert run.metrics == obs.metrics.snapshot()

    def test_events_lines_are_self_describing(self, tmp_path):
        obs = _observed_context()
        write_run_artifacts(str(tmp_path), obs, run_id="k",
                            unix_time=1000.0)
        with open(tmp_path / "events.jsonl", encoding="utf-8") as fh:
            kinds = [json.loads(line)["kind"] for line in fh]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("span") == 3
        assert kinds.count("metrics") == 1

    def test_unknown_event_kinds_are_skipped(self, tmp_path):
        obs = _observed_context()
        write_run_artifacts(str(tmp_path), obs, unix_time=1000.0)
        with open(tmp_path / "events.jsonl", "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "future_thing", "x": 1}) + "\n")
        run = load_run(str(tmp_path))
        assert len(run.spans) == 3

    def test_manifest_optional_falls_back_to_header(self, tmp_path):
        obs = _observed_context()
        write_run_artifacts(str(tmp_path), obs, run_id="hdr-run",
                            unix_time=1000.0)
        os.remove(tmp_path / "run.json")
        run = load_run(str(tmp_path))
        assert run.run_id == "hdr-run"
        assert len(run.spans) == 3

    def test_missing_events_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="events.jsonl"):
            load_run(str(tmp_path))


class TestProfile:
    def test_golden_table(self):
        assert render_table(build_profile(FIXTURE_SPANS)) == GOLDEN_TABLE

    def test_golden_folded(self):
        assert folded_stacks(build_profile(FIXTURE_SPANS)) == GOLDEN_FOLDED

    def test_self_time_subtracts_direct_children(self):
        profile = build_profile(FIXTURE_SPANS)
        job = profile.path("execute", "batch", "job")
        assert job.calls == 2
        assert job.total_s == pytest.approx(0.8)
        assert job.self_s == pytest.approx(0.8 - 0.4 - 0.2 - 0.05)

    def test_orphan_spans_become_roots(self):
        orphan = rec("zz", "gone", "lonely", 0.1)
        profile = build_profile([orphan])
        assert profile.path("lonely").calls == 1

    def test_top_jobs_limit(self):
        profile = build_profile(FIXTURE_SPANS, top_jobs=1)
        assert [row["job_id"] for row in profile.slowest_jobs] == [1]


class TestObsReportCli:
    @staticmethod
    def _write_fixture_run(tmp_path, monkeypatch):
        monkeypatch.setattr("repro.obs.artifacts.git_revision",
                            lambda cwd=None: None)
        obs = ObsContext()
        obs.tracer.adopt(FIXTURE_SPANS)
        write_run_artifacts(str(tmp_path), obs, run_id="golden-run",
                            unix_time=1000.0)

    def test_report_golden_output(self, tmp_path, monkeypatch, capsys):
        self._write_fixture_run(tmp_path, monkeypatch)
        assert main(["obs", "report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out == "Run golden-run\n\n" + GOLDEN_TABLE

    def test_report_json_mode(self, tmp_path, monkeypatch, capsys):
        self._write_fixture_run(tmp_path, monkeypatch)
        assert main(["obs", "report", str(tmp_path), "--json",
                     "--top", "1"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run_id"] == "golden-run"
        assert doc["span_count"] == 7
        assert len(doc["slowest_jobs"]) == 1
        assert doc["paths"][0]["path"] == ["execute"]

    def test_report_folded_export(self, tmp_path, monkeypatch, capsys):
        self._write_fixture_run(tmp_path, monkeypatch)
        folded = tmp_path / "stacks.folded"
        assert main(["obs", "report", str(tmp_path),
                     "--folded", str(folded)]) == 0
        assert folded.read_text().splitlines() == GOLDEN_FOLDED
        assert "Folded stacks written to" in capsys.readouterr().out

    def test_report_missing_dir_errors_cleanly(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope")]) == 1
        err = json.loads(capsys.readouterr().err)
        assert "events.jsonl" in err["error"]


class TestDegradedRunArtifacts:
    """`obs report` on the artifacts a crashed or empty run leaves behind.

    A killed ``--obs-dir`` run can leave an empty ``events.jsonl``, a
    truncated final line, or a ``metrics: null`` record; the report must
    degrade to its empty shape instead of raising.
    """

    def test_empty_events_file_reports_unknown_run(self, tmp_path, capsys):
        (tmp_path / "events.jsonl").write_text("")
        assert main(["obs", "report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("Run unknown\n")
        assert "0 spans" in out

    def test_truncated_and_null_lines_are_counted(self, tmp_path):
        lines = [
            json.dumps({"kind": "run_start", "run_id": "crashed"}),
            json.dumps({"kind": "metrics", "metrics": None}),
            '["not", "a", "dict"]',
            '{"kind": "span", "trunc',          # torn mid-write
        ]
        (tmp_path / "events.jsonl").write_text("\n".join(lines) + "\n")
        run = load_run(str(tmp_path))
        assert run.corrupt_lines == 2
        assert run.metrics == {}
        assert run.spans == []
        assert run.run_id == "crashed"          # header fallback

    def test_degraded_run_survives_json_mode(self, tmp_path, capsys):
        (tmp_path / "events.jsonl").write_text(
            json.dumps({"kind": "metrics", "metrics": None}) + "\n"
            + "{garbage\n")
        assert main(["obs", "report", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run_id"] == "unknown"
        assert doc["span_count"] == 0
