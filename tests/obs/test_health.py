"""Unit tests for the health telemetry layer (repro.obs.health)."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.health import (DEFAULT_SLOS, HeartbeatWriter, SelfAssessor,
                              Slo, SloTracker, build_health_report,
                              load_heartbeat, render_health_report)
from repro.obs.metrics import Histogram, MetricsRegistry


# -- the bounded writer -------------------------------------------------------

class TestHeartbeatWriter:
    def test_offer_never_touches_disk(self, tmp_path):
        path = str(tmp_path / "sub" / "hb.jsonl")
        writer = HeartbeatWriter(path, capacity=4)
        writer.offer({"tick": 1})
        assert not os.path.exists(path)

    def test_flush_drains_in_order(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        writer = HeartbeatWriter(path, capacity=8)
        for tick in range(5):
            writer.offer({"tick": tick})
        assert writer.flush() == 5
        ticks = [json.loads(line)["tick"] for line in open(path)]
        assert ticks == [0, 1, 2, 3, 4]
        assert writer.written == 5

    def test_full_ring_sheds_oldest_and_counts(self, tmp_path):
        metrics = MetricsRegistry()
        writer = HeartbeatWriter(str(tmp_path / "hb.jsonl"),
                                 capacity=3, metrics=metrics)
        kept = [writer.offer({"tick": tick}) for tick in range(5)]
        assert kept == [True, True, True, False, False]
        assert writer.dropped == 2
        writer.flush()
        ticks = [json.loads(line)["tick"]
                 for line in open(writer.path)]
        # The two oldest records were shed, the freshest survived.
        assert ticks == [2, 3, 4]
        dropped = metrics.get(
            "repro_health_heartbeat_dropped_total")
        assert dropped is not None and dropped.total() == 2

    def test_close_leaves_a_file_even_when_empty(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        writer = HeartbeatWriter(path)
        writer.close()
        assert os.path.exists(path)
        assert open(path).read() == ""


# -- SLOs ---------------------------------------------------------------------

class TestSlo:
    def test_direction_operators(self):
        assert Slo("lag", "lag", "<=", 10.0).good(10.0)
        assert not Slo("lag", "lag", "<=", 10.0).good(10.5)
        assert Slo("avail", "avail", ">=", 0.99).good(1.0)
        assert not Slo("avail", "avail", ">=", 0.99).good(0.5)

    def test_missing_signal_is_not_a_violation(self):
        assert Slo("lag", "lag", "<=", 10.0).good(None)

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            Slo("lag", "lag", "==", 1.0)


class TestSloTracker:
    def _tracker(self):
        return SloTracker((Slo("lag", "lag", "<=", 10.0),),
                          fast_window=3, slow_window=6,
                          fast_burn=0.5, slow_burn=0.2)

    def test_steady_good_never_fires(self):
        tracker = self._tracker()
        for tick in range(20):
            assert tracker.update(tick, {"lag": 1.0}) == []
        attainment = tracker.attainment()["lag"]
        assert attainment["attainment"] == 1.0
        assert attainment["alerts_fired"] == 0

    def test_one_bad_tick_does_not_page(self):
        tracker = self._tracker()
        events = []
        for tick in range(10):
            lag = 99.0 if tick == 5 else 1.0
            events += tracker.update(tick, {"lag": lag})
        assert events == []

    def test_sustained_burn_fires_then_resolves(self):
        tracker = self._tracker()
        events = []
        for tick in range(20):
            lag = 99.0 if 5 <= tick < 12 else 1.0
            events += tracker.update(tick, {"lag": lag})
        states = [(e["state"], e["slo"]) for e in events]
        assert ("firing", "lag") in states
        assert ("resolved", "lag") in states
        # Exactly one firing/resolved pair for one sustained incident.
        assert len(events) == 2
        firing = events[0]
        assert firing["fast_bad_fraction"] >= 0.5
        assert firing["slow_bad_fraction"] >= 0.2
        assert tracker.attainment()["lag"]["alerts_fired"] == 1
        assert not tracker.attainment()["lag"]["firing"]

    def test_fast_window_must_fill_before_firing(self):
        tracker = self._tracker()
        # Two bad ticks of a not-yet-full fast window: no page.
        assert tracker.update(0, {"lag": 99.0}) == []
        assert tracker.update(1, {"lag": 99.0}) == []


# -- self-assessment ----------------------------------------------------------

class TestSelfAssessor:
    def test_constant_series_never_declares(self):
        assessor = SelfAssessor(kpis=("kpi",), baseline_ticks=20, omega=5)
        for tick in range(120):
            assert assessor.observe(tick, {"kpi": 7.0}) == []
        assert assessor.finalize(120) == []
        assert assessor.detections == []

    def test_step_after_baseline_is_declared(self):
        assessor = SelfAssessor(kpis=("kpi",), baseline_ticks=20, omega=5)
        found = []
        for tick in range(120):
            value = 7.0 if tick < 60 else 0.0
            found += assessor.observe(tick, {"kpi": value})
        found += assessor.finalize(120)
        assert len(found) == 1
        record = found[0]
        assert record["kpi"] == "kpi"
        assert record["direction"] == -1
        assert 55 <= record["start_tick"] <= 62
        assert record["kind"] == "self_detection"

    def test_declares_at_most_once_per_kpi(self):
        assessor = SelfAssessor(kpis=("kpi",), baseline_ticks=20, omega=5)
        found = []
        for tick in range(200):
            value = 7.0 if tick < 60 or 120 <= tick else 0.0
            found += assessor.observe(tick, {"kpi": value})
        found += assessor.finalize(200)
        assert len(found) == 1

    def test_missing_kpi_reads_as_zero(self):
        assessor = SelfAssessor(kpis=("kpi",), baseline_ticks=10, omega=5)
        for tick in range(40):
            assessor.observe(tick, {})
        assert assessor.finalize(40) == []


# -- histogram percentiles ----------------------------------------------------

class TestHistogramPercentile:
    def test_empty_is_none(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        assert hist.percentile(99) is None

    def test_interpolates_within_bucket(self):
        hist = Histogram("h", buckets=(10.0, 20.0, 40.0))
        for _ in range(100):
            hist.observe(15.0)            # all in the (10, 20] bucket
        # Every quantile lands inside that bucket's bounds.
        assert 10.0 <= hist.percentile(1) <= 20.0
        assert 10.0 <= hist.percentile(50) <= 20.0
        assert 10.0 <= hist.percentile(99) <= 20.0
        # p100 is exactly the bucket's upper bound.
        assert hist.percentile(100) == 20.0

    def test_rank_walks_buckets(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 3.0))
        for value in (0.5,) * 50 + (1.5,) * 30 + (2.5,) * 20:
            hist.observe(value)
        assert hist.percentile(50) <= 1.0
        assert 1.0 < hist.percentile(75) <= 2.0
        assert 2.0 < hist.percentile(95) <= 3.0

    def test_overflow_clamps_to_top_bound(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for _ in range(10):
            hist.observe(99.0)
        assert hist.percentile(99) == 2.0

    def test_labeled_rows_are_independent(self):
        hist = Histogram("h", buckets=(10.0, 100.0))
        hist.observe(5.0, shard="a")
        hist.observe(50.0, shard="b")
        assert hist.percentile(99, shard="a") <= 10.0
        assert hist.percentile(99, shard="b") > 10.0
        assert hist.percentile(99) is None    # unlabeled row is empty


class TestRegistryGet:
    def test_peek_does_not_create(self):
        metrics = MetricsRegistry()
        assert metrics.get("nope") is None
        assert "nope" not in metrics.snapshot()["counters"]
        metrics.counter("yes").inc()
        assert metrics.get("yes").total() == 1


# -- reading heartbeat streams back -------------------------------------------

def _write_stream(path, records):
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def _beat(tick, **extra):
    doc = {"kind": "heartbeat", "tick": tick, "verdicts": 1,
           "shed_fragments": 0, "ingest_fragments": 10,
           "degraded_verdicts": 0, "watermark_lag_bins": 0,
           "queue_depth": 0, "shed_ratio": 0.0,
           "verdict_lag_p99_bins": 5.0}
    doc.update(extra)
    return doc


class TestLoadHeartbeat:
    def test_skips_blank_and_corrupt_lines(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps(_beat(1)) + "\n")
            fh.write("\n")
            fh.write('{"kind": "heartbeat", "tick": 2')  # truncated
        records = load_heartbeat(path)
        assert [r["tick"] for r in records] == [1]


class TestBuildHealthReport:
    def test_truncated_stream_recomputes_slos(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        _write_stream(path, [_beat(t) for t in range(5)])
        report = build_health_report(load_heartbeat(path))
        assert not report["final_summary_present"]
        assert report["ticks"] == 5
        assert report["totals"]["verdicts"] == 5
        names = set(report["slos"])
        assert names == {slo.name for slo in DEFAULT_SLOS}

    def test_prefers_final_summary(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        _write_stream(path, [_beat(1), {
            "kind": "health_summary", "ticks": 1,
            "slos": {"custom": {"objective": "x <= 1",
                                "attainment": 1.0}},
            "self_detections": [{"kpi": "k", "declared_tick": 3}],
            "heartbeat_dropped": 7,
        }])
        report = build_health_report(load_heartbeat(path))
        assert report["final_summary_present"]
        assert list(report["slos"]) == ["custom"]
        assert report["self_detections"] == [{"kpi": "k",
                                              "declared_tick": 3}]
        assert report["heartbeat_dropped"] == 7

    def test_lag_over_time_is_downsampled(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        _write_stream(path, [_beat(t) for t in range(500)])
        report = build_health_report(load_heartbeat(path))
        points = report["lag_over_time"]
        assert 2 <= len(points) <= 12
        assert points[0]["tick"] == 0
        assert points[-1]["tick"] == 499

    def test_render_is_total(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        _write_stream(path, [_beat(t) for t in range(3)])
        text = render_health_report(
            build_health_report(load_heartbeat(path)))
        assert "SLO attainment" in text
        assert "Self-assessment" in text

    def test_empty_stream(self):
        report = build_health_report([])
        assert report["ticks"] == 0
        assert report["self_detections"] == []
        assert render_health_report(report)


# -- the CLI ------------------------------------------------------------------

class TestHealthReportCli:
    def test_text_and_json_and_export(self, tmp_path, capsys):
        path = str(tmp_path / "hb.jsonl")
        _write_stream(path, [_beat(t) for t in range(3)])
        out = str(tmp_path / "health.json")
        assert main(["obs", "health-report", path, "--out", out]) == 0
        assert "SLO attainment" in capsys.readouterr().out
        exported = json.load(open(out))
        assert exported["ticks"] == 3
        assert main(["obs", "health-report", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ticks"] == 3

    def test_detection_bounds_gate(self, tmp_path, capsys):
        path = str(tmp_path / "hb.jsonl")
        _write_stream(path, [_beat(1), {
            "kind": "self_detection", "kpi": "k", "tick": 2,
            "declared_tick": 2, "start_tick": 1, "direction": -1,
            "score": 9.0}])
        assert main(["obs", "health-report", path,
                     "--min-self-detections", "1"]) == 0
        capsys.readouterr()
        assert main(["obs", "health-report", path,
                     "--max-self-detections", "0"]) == 1
        assert "outside the required bounds" in capsys.readouterr().out
        assert main(["obs", "health-report", path,
                     "--min-self-detections", "2"]) == 1
