"""Tests for counters, gauges, histograms, snapshot/merge, exposition."""

import pytest

from repro.obs import BYTE_BUCKETS, LATENCY_BUCKETS, MetricsRegistry
from repro.obs.metrics import Histogram


class TestCounterGauge:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", help="Jobs.")
        c.inc(detector="funnel")
        c.inc(2, detector="funnel")
        c.inc(detector="cusum")
        assert c.value(detector="funnel") == 3
        assert c.value(detector="cusum") == 1
        assert c.value(detector="none") == 0
        assert c.total() == 4

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.1):        # both land in the first bucket
            h.observe(value)
        h.observe(0.100001)              # just over the edge -> second
        h.observe(1.0)                   # exactly the last bound -> second
        h.observe(3.0)                   # overflow -> +Inf
        key = ()
        assert h.counts[key] == [2, 2, 1]
        assert h.count() == 5
        assert h.sums[key] == pytest.approx(0.05 + 0.1 + 0.100001 + 1.0 + 3.0)

    def test_invalid_buckets_rejected(self):
        for bad in ((), (1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ValueError, match="strictly"):
                Histogram("h", buckets=bad)

    def test_default_bucket_tables(self):
        assert LATENCY_BUCKETS == tuple(sorted(LATENCY_BUCKETS))
        assert BYTE_BUCKETS == tuple(sorted(BYTE_BUCKETS))
        assert LATENCY_BUCKETS[0] == 0.0001 and LATENCY_BUCKETS[-1] == 10.0


class TestSnapshotMerge:
    @staticmethod
    def _worker_registry():
        reg = MetricsRegistry()
        reg.counter("jobs_total", help="Jobs.").inc(4, detector="funnel")
        reg.gauge("inflight").set(3)
        h = reg.histogram("lat", help="Latency.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        return reg

    def test_merge_adds_counters_and_buckets_keeps_gauge_max(self):
        parent = MetricsRegistry()
        parent.counter("jobs_total", help="Jobs.").inc(1, detector="funnel")
        parent.gauge("inflight").set(7)
        parent.histogram("lat", help="Latency.",
                         buckets=(0.1, 1.0)).observe(0.5)

        parent.merge(self._worker_registry().snapshot())

        assert parent.counter("jobs_total").value(detector="funnel") == 5
        assert parent.gauge("inflight").value() == 7
        hist = parent.histogram("lat", buckets=(0.1, 1.0))
        assert hist.counts[()] == [1, 1, 1]
        assert hist.sums[()] == pytest.approx(0.05 + 5.0 + 0.5)

    def test_merge_into_empty_registry_reproduces_snapshot(self):
        worker = self._worker_registry()
        parent = MetricsRegistry()
        parent.merge(worker.snapshot())
        assert parent.snapshot() == worker.snapshot()

    def test_merge_bucket_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        bad = MetricsRegistry()
        bad.histogram("lat", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            parent.merge(bad.snapshot())

    def test_snapshot_is_json_safe(self):
        import json
        snap = self._worker_registry().snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestPrometheusExposition:
    def test_golden_exposition(self):
        reg = MetricsRegistry()
        jobs = reg.counter("jobs_total", help="Jobs.")
        jobs.inc(3, detector="funnel")
        jobs.inc(1, detector="cusum")
        reg.gauge("depth", help="Queue depth.").set(2)
        lat = reg.histogram("lat", help="Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 3.0):
            lat.observe(value)

        expected = (
            '# HELP depth Queue depth.\n'
            '# TYPE depth gauge\n'
            'depth 2\n'
            '# HELP jobs_total Jobs.\n'
            '# TYPE jobs_total counter\n'
            'jobs_total{detector="cusum"} 1\n'
            'jobs_total{detector="funnel"} 3\n'
            '# HELP lat Latency.\n'
            '# TYPE lat histogram\n'
            'lat_bucket{le="0.1"} 1\n'
            'lat_bucket{le="1"} 2\n'
            'lat_bucket{le="+Inf"} 3\n'
            'lat_sum 3.55\n'
            'lat_count 3\n'
        )
        assert reg.to_prometheus() == expected

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1, path='a"b\\c')
        assert r'c{path="a\"b\\c"} 1' in reg.to_prometheus()

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestLabeledHistogramRoundTrip:
    """A *labeled* histogram through the worker-snapshot boundary.

    The engine's pool workers ship their registries home as snapshots;
    labeled histogram rows must fold into the parent losslessly and the
    merged registry must expose the exact Prometheus text a single
    process would have produced.
    """

    GOLDEN = (
        '# HELP stage_lat Stage latency.\n'
        '# TYPE stage_lat histogram\n'
        'stage_lat_bucket{stage="detect",le="0.1"} 2\n'
        'stage_lat_bucket{stage="detect",le="1"} 5\n'
        'stage_lat_bucket{stage="detect",le="+Inf"} 6\n'
        'stage_lat_sum{stage="detect"} 3.61\n'
        'stage_lat_count{stage="detect"} 6\n'
        'stage_lat_bucket{stage="fetch",le="0.1"} 1\n'
        'stage_lat_bucket{stage="fetch",le="1"} 1\n'
        'stage_lat_bucket{stage="fetch",le="+Inf"} 2\n'
        'stage_lat_sum{stage="fetch"} 2.05\n'
        'stage_lat_count{stage="fetch"} 2\n'
    )

    @staticmethod
    def _observe(reg, values_by_stage):
        hist = reg.histogram("stage_lat", help="Stage latency.",
                             buckets=(0.1, 1.0))
        for stage, values in values_by_stage.items():
            for value in values:
                hist.observe(value, stage=stage)

    def _merged(self):
        worker_a = MetricsRegistry()
        self._observe(worker_a, {"detect": (0.05, 0.5, 2.0),
                                 "fetch": (0.05,)})
        worker_b = MetricsRegistry()
        self._observe(worker_b, {"detect": (0.06, 0.5, 0.5),
                                 "fetch": (2.0,)})
        parent = MetricsRegistry()
        parent.merge(worker_a.snapshot())
        parent.merge(worker_b.snapshot())
        return parent

    def test_merged_exposition_matches_single_process(self):
        single = MetricsRegistry()
        self._observe(single, {"detect": (0.05, 0.5, 2.0, 0.06, 0.5, 0.5),
                               "fetch": (0.05, 2.0)})
        merged = self._merged()
        assert merged.to_prometheus() == single.to_prometheus()
        assert merged.snapshot() == single.snapshot()

    def test_golden_exposition_text(self):
        assert self._merged().to_prometheus() == self.GOLDEN

    def test_percentiles_survive_the_merge(self):
        merged = self._merged()
        hist = merged.histogram("stage_lat", buckets=(0.1, 1.0))
        # 6 detect samples: 2 in (<=0.1], 3 in (0.1, 1], 1 overflow.
        assert hist.percentile(10, stage="detect") <= 0.1
        assert 0.1 < hist.percentile(60, stage="detect") <= 1.0
        assert hist.percentile(99, stage="detect") == 1.0  # clamped
        assert hist.count(stage="fetch") == 2
