"""Tests for the span/tracer layer, including cross-process re-parenting."""

import pickle

import pytest

from repro.obs import RemoteContext, SpanRecord, Tracer, new_span_id


class TestIds:
    def test_span_ids_unique(self):
        ids = {new_span_id() for _ in range(500)}
        assert len(ids) == 500

    def test_tracers_get_distinct_traces(self):
        assert Tracer().trace_id != Tracer().trace_id


class TestSpans:
    def test_nesting_parents_correctly(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with tracer.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        names = [r.name for r in tracer.finished]
        assert names == ["inner", "sibling", "outer"]
        outer_rec = tracer.finished[-1]
        assert outer_rec.parent_id is None
        assert all(r.duration_s >= 0 for r in tracer.finished)

    def test_attrs_and_sorted_tuple(self):
        tracer = Tracer()
        with tracer.span("s", zebra=1, alpha=2) as live:
            live.set_attr("mid", 3)
        rec = tracer.finished[0]
        assert rec.attrs == (("alpha", 2), ("mid", 3), ("zebra", 1))
        assert rec.attr("zebra") == 1
        assert rec.attr("missing", "d") == "d"

    def test_record_defaults_parent_to_current(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            rec = tracer.record("timed", 0.5, items=3)
        assert rec.parent_id == outer.span_id
        assert rec.duration_s == 0.5
        explicit = tracer.record("other", 0.1, parent_id="abc")
        assert explicit.parent_id == "abc"

    def test_record_round_trips_through_dict(self):
        tracer = Tracer()
        rec = tracer.record("stage", 0.25, items=2)
        clone = SpanRecord.from_dict(rec.as_dict())
        assert clone.as_dict() == rec.as_dict()
        assert clone.name == "stage"
        assert clone.attr("items") == 2


class TestReparenting:
    """Worker spans must survive pickling and slot into the parent tree."""

    def test_remote_context_parents_worker_spans(self):
        parent = Tracer()
        with parent.span("execute") as execute:
            remote = parent.remote_context()
            assert remote == RemoteContext(trace_id=parent.trace_id,
                                           parent_id=execute.span_id)
            worker = Tracer(remote=remote)
            with worker.span("batch") as batch:
                with worker.span("job"):
                    pass
            payload = pickle.dumps(worker.export())
        records = pickle.loads(payload)
        parent.adopt(records)

        by_name = {r.name: r for r in parent.finished}
        assert by_name["batch"].parent_id == execute.span_id
        assert by_name["job"].parent_id == batch.span_id
        assert {r.trace_id for r in parent.finished} == {parent.trace_id}

    def test_adopt_rewrites_foreign_trace_ids(self):
        parent, stray = Tracer(), Tracer()
        with stray.span("orphan"):
            pass
        assert parent.adopt(stray.export()) == 1
        assert parent.finished[0].trace_id == parent.trace_id
        assert parent.finished[0].name == "orphan"

    def test_remote_context_itself_pickles(self):
        remote = RemoteContext(trace_id="t", parent_id="p")
        assert pickle.loads(pickle.dumps(remote)) == remote


class TestRecordImmutability:
    def test_records_are_frozen(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        with pytest.raises(AttributeError):
            tracer.finished[0].name = "other"
