"""Focused tests for the deployment simulation's internals."""

import math

import pytest

from repro.simulation.deployment import (DeploymentDay, DeploymentReport,
                                         DeploymentSpec, _day_corpus,
                                         PAPER_DAILY_CHANGES,
                                         PAPER_DAILY_IMPACTFUL,
                                         PAPER_DAILY_KPIS)


class TestSpecDerivedRates:
    def test_paper_rates(self):
        spec = DeploymentSpec()
        assert spec.impact_rate == pytest.approx(
            PAPER_DAILY_IMPACTFUL / PAPER_DAILY_CHANGES)
        assert spec.kpis_per_change == pytest.approx(
            PAPER_DAILY_KPIS / PAPER_DAILY_CHANGES)

    def test_changes_per_day_scales(self):
        assert DeploymentSpec(scale=1.0).changes_per_day == \
            PAPER_DAILY_CHANGES
        assert DeploymentSpec(scale=0.01).changes_per_day == \
            pytest.approx(241, abs=1)

    def test_minimum_volume(self):
        assert DeploymentSpec(scale=1e-6).changes_per_day >= 10


class TestDayCorpus:
    def test_different_days_differ(self):
        spec = DeploymentSpec(scale=0.0005, seed=3)
        day0 = _day_corpus(spec, 0)
        day1 = _day_corpus(spec, 1)
        item0 = next(iter(day0))
        item1 = next(iter(day1))
        assert (item0.treated != item1.treated).any()

    def test_same_day_reproducible(self):
        spec = DeploymentSpec(scale=0.0005, seed=3)
        a = next(iter(_day_corpus(spec, 2)))
        b = next(iter(_day_corpus(spec, 2)))
        assert (a.treated == b.treated).all()

    def test_volume_tracks_spec(self):
        spec = DeploymentSpec(scale=0.0005)
        corpus = _day_corpus(spec, 0)
        expected = spec.changes_per_day * spec.kpis_per_change
        assert len(corpus) == pytest.approx(expected, rel=0.35)


class TestReportAggregation:
    def _report(self):
        report = DeploymentReport()
        report.days.append(DeploymentDay(
            day=0, changes=100, impactful_changes=2, kpis=1000,
            detections=50, true_detections=49, missed_impacted_kpis=5))
        report.days.append(DeploymentDay(
            day=1, changes=100, impactful_changes=1, kpis=1000,
            detections=30, true_detections=30, missed_impacted_kpis=2))
        return report

    def test_daily_averages(self):
        report = self._report()
        assert report.daily_changes == 100
        assert report.daily_kpis == 1000
        assert report.daily_detections == 40

    def test_week_precision_pools_counts(self):
        report = self._report()
        assert report.precision == pytest.approx(79 / 80)
        assert report.recall == pytest.approx(79 / 86)

    def test_empty_report_nan(self):
        report = DeploymentReport()
        assert math.isnan(report.precision)
        assert math.isnan(report.recall)

    def test_table3_row_keys(self):
        row = self._report().as_table3_row()
        assert set(row) == {
            "software_changes_per_day", "impactful_changes_per_day",
            "kpis_per_day", "kpi_changes_per_day", "precision", "recall",
        }
