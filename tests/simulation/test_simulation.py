"""Tests for the simulation substrate and case studies."""

import pytest

from repro.changes.rollout import RolloutPolicy
from repro.exceptions import ParameterError, TelemetryError
from repro.simulation.cases import advertising_case, redis_case
from repro.simulation.clock import SimulationClock
from repro.simulation.deployment import (DeploymentDay, DeploymentSpec,
                                         simulate_week)
from repro.simulation.scenario import ServiceScenario
from repro.telemetry.kpi import KpiKey
from repro.types import ChangeKind, LaunchMode, Verdict


class TestSimulationClock:
    def test_tick_and_advance(self):
        clock = SimulationClock(start=0)
        assert clock.tick() == 60
        assert clock.advance_minutes(10) == 660
        assert clock.advance_to(1200) == 1200

    def test_day_second(self):
        clock = SimulationClock(start=86400 + 3600)
        assert clock.day_second == 3600

    def test_invalid(self):
        with pytest.raises(ParameterError):
            SimulationClock(start=30)
        clock = SimulationClock()
        with pytest.raises(ParameterError):
            clock.advance_to(-60)
        with pytest.raises(ParameterError):
            clock.advance_minutes(-1)


class TestServiceScenario:
    def test_series_accumulate(self):
        scenario = ServiceScenario(seed=3)
        scenario.add_service("svc.x", n_servers=3)
        scenario.run(minutes=50)
        scenario.run(minutes=30)
        key = KpiKey("server", "host-0001", "memory_utilization")
        assert len(scenario.store.series(key)) == 80

    def test_change_effect_flagged_on_treated_only(self):
        scenario = ServiceScenario(seed=1)
        scenario.add_service("svc.x", n_servers=6)
        scenario.run(minutes=240)
        change = scenario.deploy_change(
            "svc.x", ChangeKind.CONFIG_CHANGE, effect_sigmas=6.0,
            metric="memory_utilization")
        scenario.run(minutes=120)
        assessment = scenario.assess(change)
        flagged = {str(k) for k in assessment.flagged}
        treated = set(assessment.impact_set.treated_hostnames)
        assert flagged
        for name in flagged:
            _, host, metric = name.split(":")
            assert host in treated
            assert metric == "memory_utilization"

    def test_no_effect_no_flags(self):
        scenario = ServiceScenario(seed=2)
        scenario.add_service("svc.x", n_servers=6)
        scenario.run(minutes=240)
        change = scenario.deploy_change("svc.x",
                                        ChangeKind.SOFTWARE_UPGRADE)
        scenario.run(minutes=120)
        assessment = scenario.assess(change)
        assert assessment.flagged == []

    def test_change_log_guard(self):
        scenario = ServiceScenario(seed=4)
        scenario.add_service("svc.x", n_servers=4)
        scenario.run(minutes=60)
        scenario.deploy_change("svc.x", ChangeKind.SOFTWARE_UPGRADE)
        from repro.exceptions import ChangeLogError
        with pytest.raises(ChangeLogError):
            scenario.deploy_change("svc.x", ChangeKind.SOFTWARE_UPGRADE)

    def test_unknown_metric_effect_rejected(self):
        scenario = ServiceScenario(seed=5)
        scenario.add_service("svc.x", n_servers=4)
        with pytest.raises(TelemetryError):
            scenario.deploy_change("svc.x", ChangeKind.CONFIG_CHANGE,
                                   effect_sigmas=2.0, metric="nope")

    def test_full_launch_policy(self):
        scenario = ServiceScenario(seed=6)
        scenario.add_service("svc.x", n_servers=3)
        scenario.run(minutes=60)
        change = scenario.deploy_change(
            "svc.x", ChangeKind.SOFTWARE_UPGRADE,
            policy=RolloutPolicy(mode=LaunchMode.FULL))
        assert len(change.hostnames) == 3


class TestDeployment:
    def test_tiny_week(self):
        spec = DeploymentSpec(scale=0.0004, days=2, seed=11)
        report = simulate_week(spec)
        assert len(report.days) == 2
        assert report.daily_kpis > 0
        row = report.as_table3_row()
        assert 0.0 <= row["precision"] <= 1.0
        # FUNNEL's deployed precision was 98.21%; the simulated one
        # should be well above 90% even at tiny scale.
        assert row["precision"] > 0.9

    def test_invalid_spec(self):
        with pytest.raises(ParameterError):
            DeploymentSpec(scale=0.0)
        with pytest.raises(ParameterError):
            DeploymentSpec(days=0)

    def test_day_counters(self):
        day = DeploymentDay(day=0, detections=10, true_detections=9,
                            missed_impacted_kpis=1)
        assert day.precision == 0.9
        assert day.recall == 0.9


class TestRedisCase:
    @pytest.fixture(scope="class")
    def result(self):
        return redis_case(n_class_a=4, n_class_b=4, n_unaffected_kpis=20,
                          pre_minutes=120, post_minutes=120)

    def test_impact_set_size(self, result):
        assert result.total_kpis == 28

    def test_flags_mostly_nic_shifts(self, result):
        assert result.flagged_count >= 6
        nic_flags = [k for k in result.flagged if "redis-a" in k
                     or "redis-b" in k]
        assert len(nic_flags) >= 6

    def test_directions_match_rebalancing(self, result):
        for name in result.flagged:
            if "redis-a" in name:
                assert result.directions[name] == -1
            elif "redis-b" in name:
                assert result.directions[name] == +1

    def test_examples_available(self, result):
        assert result.class_a_example is not None
        assert result.class_b_example is not None
        change = result.change_index
        a = result.class_a_example
        assert a[change + 10:].mean() < a[:change].mean()


class TestAdvertisingCase:
    @pytest.fixture(scope="class")
    def result(self):
        return advertising_case(days_of_context=3)

    def test_detected_as_caused_by_change(self, result):
        assert result.assessment.verdict is Verdict.CAUSED_BY_CHANGE

    def test_detected_within_10_minutes(self, result):
        assert result.detected_within_10_minutes
        assert result.detection_delay_minutes < result.manual_delay_minutes

    def test_negative_direction(self, result):
        assert result.assessment.change.direction == -1

    def test_series_shows_drop_and_recovery(self, result):
        clicks = result.clicks
        i = result.change_index
        r = result.recovery_index
        before = clicks[i - 30:i].mean()
        during = clicks[i + 5:i + 60].mean()
        after = clicks[r + 5:r + 60].mean()
        assert during < 0.7 * before
        assert after > 0.8 * before
