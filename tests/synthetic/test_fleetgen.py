"""Tests for fleet and change-workload generation."""

import pytest

from repro.exceptions import ParameterError
from repro.synthetic.fleetgen import (ChangeWorkloadSpec, FleetSpec,
                                      generate_change_workload,
                                      generate_fleet)
from repro.topology.impact import identify_impact_set
from repro.types import LaunchMode


@pytest.fixture(scope="module")
def fleet():
    return generate_fleet(FleetSpec())


class TestGenerateFleet:
    def test_paper_shape(self, fleet):
        assert len(fleet) == 19
        assert len(fleet.server_names) == 931

    def test_min_servers_respected(self, fleet):
        for name in fleet.service_names:
            assert len(fleet.service(name).hostnames) >= 4

    def test_names_form_hierarchy(self, fleet):
        for name in fleet.service_names:
            family, tier = name.split(".")
            assert family and tier

    def test_relationships_exist(self, fleet):
        graph = fleet.relationships
        assert len(graph.edges) > 0
        # Same-family tiers are siblings in the naming hierarchy.
        families = {}
        for name in fleet.service_names:
            families.setdefault(name.split(".")[0], []).append(name)
        multi = [v for v in families.values() if len(v) >= 2]
        assert multi
        a, b = multi[0][0], multi[0][1]
        assert b in graph.neighbors(a)

    def test_deterministic(self):
        a = generate_fleet(FleetSpec(seed=11))
        b = generate_fleet(FleetSpec(seed=11))
        assert a.service_names == b.service_names
        assert a.server_names == b.server_names

    def test_impact_sets_work_everywhere(self, fleet):
        for name in fleet.service_names[:5]:
            hosts = fleet.service(name).hostnames
            impact = identify_impact_set(fleet, name, hosts[:1])
            assert impact.treated_hostnames == (hosts[0],)

    def test_invalid_spec(self):
        with pytest.raises(ParameterError):
            FleetSpec(n_services=0)
        with pytest.raises(ParameterError):
            FleetSpec(n_services=100, n_servers=100)


class TestChangeWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        fleet = generate_fleet(FleetSpec())
        spec = ChangeWorkloadSpec(changes_per_day=300, seed=2)
        log, changes = generate_change_workload(fleet, spec)
        return fleet, log, changes

    def test_volume_near_target(self, workload):
        _, log, changes = workload
        # Some slots are dropped by the concurrency guard.
        assert 150 <= len(changes) <= 300
        assert len(log) == len(changes)

    def test_time_ordered(self, workload):
        _, _, changes = workload
        times = [c.at_time for c in changes]
        assert times == sorted(times)

    def test_guard_respected(self, workload):
        _, _, changes = workload
        last = {}
        for change in changes:
            if change.service in last:
                assert change.at_time - last[change.service] >= 3600
            last[change.service] = change.at_time

    def test_launch_mode_mix(self, workload):
        fleet, _, changes = workload
        modes = [c.launch_mode(tuple(fleet.service(c.service).hostnames))
                 for c in changes]
        dark = sum(1 for m in modes if m is LaunchMode.DARK)
        assert 0 < dark < len(modes)
        assert dark / len(modes) > 0.5

    def test_hostnames_belong_to_service(self, workload):
        fleet, _, changes = workload
        for change in changes[:50]:
            service_hosts = set(fleet.service(change.service).hostnames)
            assert set(change.hostnames) <= service_hosts

    def test_deterministic(self):
        fleet = generate_fleet(FleetSpec(seed=8))
        spec = ChangeWorkloadSpec(changes_per_day=100, seed=5)
        _, a = generate_change_workload(fleet, spec)
        _, b = generate_change_workload(fleet, spec)
        assert [c.at_time for c in a] == [c.at_time for c in b]
        assert [c.service for c in a] == [c.service for c in b]
