"""Tests for trace generators, effects and contamination."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.synthetic.contamination import (ContaminationConfig,
                                           contaminate_baseline,
                                           contaminate_history_panel)
from repro.synthetic.effects import (LevelShift, NoiseBurst, Ramp, Spike,
                                     TransientDip, apply_effects)
from repro.synthetic.patterns import (SeasonalPattern, StationaryPattern,
                                      VariablePattern,
                                      pattern_for_character)
from repro.telemetry.timeseries import DAY, MINUTE
from repro.types import KpiCharacter


class TestSeasonalPattern:
    def _day_timestamps(self):
        return np.arange(0, DAY, MINUTE)

    def test_daily_profile_peaks_in_afternoon(self):
        pattern = SeasonalPattern(noise_sigma=0.0)
        profile = pattern.profile(self._day_timestamps())
        peak_minute = int(np.argmax(profile))
        assert 11 * 60 <= peak_minute <= 18 * 60
        trough_minute = int(np.argmin(profile))
        assert trough_minute < 9 * 60 or trough_minute > 22 * 60

    def test_weekend_factor(self):
        pattern = SeasonalPattern(weekend_factor=0.5, noise_sigma=0.0)
        weekday = pattern.profile([2 * DAY + 12 * 3600])[0]   # Wednesday
        weekend = pattern.profile([5 * DAY + 12 * 3600])[0]   # Saturday
        assert weekend == pytest.approx(0.5 * weekday)

    def test_daily_event_applies_inside_interval(self):
        pattern = SeasonalPattern(noise_sigma=0.0,
                                  daily_events=((36000, 39600, 0.5),))
        inside = pattern.profile([36000 + 60])[0]
        just_before = pattern.profile([36000 - 60])[0]
        assert inside > 1.4 * just_before * (1.0 / 1.5)
        # The event recurs every day at the same clock time.
        next_day = pattern.profile([DAY + 36000 + 60])[0]
        assert next_day == pytest.approx(inside, rel=0.05)

    def test_repeatability_with_same_rng_seed(self):
        pattern = SeasonalPattern()
        t = self._day_timestamps()
        a = pattern.sample(t, np.random.default_rng(3))
        b = pattern.sample(t, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_invalid_event(self):
        with pytest.raises(ParameterError):
            SeasonalPattern(daily_events=((100, 50, 0.5),))
        with pytest.raises(ParameterError):
            SeasonalPattern(daily_events=((0, 60, -1.5),))

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            SeasonalPattern(base=-1.0)
        with pytest.raises(ParameterError):
            SeasonalPattern(daily_amplitude=1.5)


class TestStationaryPattern:
    def test_mean_near_level(self, rng):
        pattern = StationaryPattern(level=60.0, noise_sigma=0.5)
        x = pattern.sample(np.arange(5000) * MINUTE, rng)
        assert np.mean(x) == pytest.approx(60.0, abs=0.5)

    def test_autocorrelation_sign(self, rng):
        pattern = StationaryPattern(ar_coefficient=0.8, noise_sigma=1.0)
        x = pattern.sample(np.arange(5000) * MINUTE, rng)
        d = x - x.mean()
        rho = (d[:-1] @ d[1:]) / (d @ d)
        assert rho > 0.6

    def test_typical_scale_is_stationary_sd(self, rng):
        pattern = StationaryPattern(ar_coefficient=0.6, noise_sigma=1.0)
        x = pattern.sample(np.arange(20000) * MINUTE, rng)
        assert np.std(x) == pytest.approx(pattern.typical_scale(), rel=0.1)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            StationaryPattern(ar_coefficient=1.0)


class TestVariablePattern:
    def test_positive_and_heavy_tailed(self, rng):
        pattern = VariablePattern(level=50.0, lognormal_sigma=0.3)
        x = pattern.sample(np.arange(5000) * MINUTE, rng)
        assert np.all(x > 0.0)
        # Log-normal: mean above median.
        assert np.mean(x) > np.median(x)

    def test_spikes_present(self, rng):
        pattern = VariablePattern(level=50.0, lognormal_sigma=0.1,
                                  spike_rate=0.05, spike_magnitude=3.0)
        x = pattern.sample(np.arange(2000) * MINUTE, rng)
        assert (x > 120.0).sum() > 10

    def test_invalid(self):
        with pytest.raises(ParameterError):
            VariablePattern(level=0.0)
        with pytest.raises(ParameterError):
            VariablePattern(spike_rate=1.0)


class TestPatternFactory:
    @pytest.mark.parametrize("character", list(KpiCharacter))
    def test_factory_characters(self, character):
        pattern = pattern_for_character(character)
        assert pattern.character is character

    def test_scale_multiplies_level(self):
        small = pattern_for_character(KpiCharacter.STATIONARY, scale=1.0)
        big = pattern_for_character(KpiCharacter.STATIONARY, scale=10.0)
        assert big.level == pytest.approx(10.0 * small.level)


class TestEffects:
    def test_level_shift(self):
        out = LevelShift(start=3, magnitude=2.0).apply(np.zeros(6))
        np.testing.assert_array_equal(out, [0, 0, 0, 2, 2, 2])

    def test_level_shift_does_not_mutate(self):
        x = np.zeros(5)
        LevelShift(start=0, magnitude=1.0).apply(x)
        assert np.all(x == 0.0)

    def test_ramp_shape(self):
        out = Ramp(start=2, magnitude=4.0, duration=4).apply(np.zeros(10))
        np.testing.assert_allclose(out, [0, 0, 1, 2, 3, 4, 4, 4, 4, 4])

    def test_ramp_past_end(self):
        out = Ramp(start=8, magnitude=4.0, duration=4).apply(np.zeros(10))
        np.testing.assert_allclose(out[:8], 0.0)
        assert out[9] == pytest.approx(2.0)

    def test_spike(self):
        out = Spike(start=4, magnitude=5.0, width=2).apply(np.zeros(8))
        np.testing.assert_array_equal(out, [0, 0, 0, 0, 5, 5, 0, 0])

    def test_transient_dip_recovers(self):
        out = TransientDip(start=2, magnitude=3.0,
                           duration=3).apply(np.full(8, 10.0))
        np.testing.assert_array_equal(out, [10, 10, 7, 7, 7, 10, 10, 10])

    def test_noise_burst_changes_scale_not_location(self, rng):
        x = 10.0 + rng.normal(0, 1.0, size=400)
        out = NoiseBurst(start=200, factor=4.0, duration=200).apply(x)
        assert np.median(out[200:]) == pytest.approx(np.median(x[200:]),
                                                     abs=0.5)
        assert np.std(out[200:]) > 2.5 * np.std(x[:200])

    def test_apply_effects_composes(self):
        out = apply_effects(np.zeros(10), [
            LevelShift(start=5, magnitude=1.0),
            Spike(start=2, magnitude=3.0),
        ])
        assert out[2] == 3.0
        assert out[7] == 1.0

    @pytest.mark.parametrize("effect_cls,kwargs", [
        (LevelShift, dict(start=-1, magnitude=1.0)),
        (Ramp, dict(start=0, magnitude=1.0, duration=0)),
        (Spike, dict(start=0, magnitude=1.0, width=0)),
        (TransientDip, dict(start=0, magnitude=-1.0, duration=5)),
        (NoiseBurst, dict(start=0, factor=1.0, duration=5)),
    ])
    def test_invalid_effects(self, effect_cls, kwargs):
        with pytest.raises(ParameterError):
            effect_cls(**kwargs)

    @given(st.integers(0, 50), st.floats(-10, 10, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_level_shift_property(self, start, magnitude):
        """Pre-start samples untouched; post-start shifted exactly."""
        x = np.arange(50.0)
        out = LevelShift(start=start, magnitude=magnitude).apply(x)
        np.testing.assert_array_equal(out[:start], x[:start])
        np.testing.assert_allclose(out[start:], x[start:] + magnitude)


class TestContamination:
    def test_no_config_is_identity(self, rng):
        x = rng.normal(size=100)
        out = contaminate_baseline(x, ContaminationConfig(), rng)
        np.testing.assert_array_equal(out, x)

    def test_spikes_added(self, rng):
        x = np.zeros(200)
        config = ContaminationConfig(spike_count=5, spike_sigma=10.0)
        out = contaminate_baseline(x, config, rng)
        assert np.count_nonzero(out) >= 1

    def test_residual_shift_moves_prefix(self, rng):
        x = np.zeros(200)
        config = ContaminationConfig(residual_shift_sigma=5.0)
        out = contaminate_baseline(x, config, rng)
        assert np.abs(out).max() > 0.0
        # Suffix untouched.
        assert np.all(out[150:] == 0.0) or np.abs(out[:50]).max() > 0

    def test_history_outages(self, rng):
        panel = np.full((30, 100), 50.0)
        config = ContaminationConfig(outage_fraction=1.0)
        out = contaminate_history_panel(panel, config, rng)
        assert (out < 25.0).any(axis=1).all()

    def test_history_shape_checked(self, rng):
        with pytest.raises(ParameterError):
            contaminate_history_panel(np.zeros(10),
                                      ContaminationConfig(), rng)

    def test_invalid_config(self):
        with pytest.raises(ParameterError):
            ContaminationConfig(spike_count=-1)
        with pytest.raises(ParameterError):
            ContaminationConfig(outage_fraction=1.5)
