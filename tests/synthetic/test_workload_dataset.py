"""Tests for correlated group generation and the evaluation corpus."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.synthetic.dataset import (CorpusSpec, EvaluationCorpus,
                                     ItemTruth)
from repro.synthetic.effects import LevelShift
from repro.synthetic.patterns import StationaryPattern
from repro.synthetic.workload import (GroupTraceConfig,
                                      generate_group)
from repro.types import KpiCharacter, LaunchMode


class TestGenerateGroup:
    def _config(self, **kwargs):
        defaults = dict(
            pattern=StationaryPattern(level=50.0, noise_sigma=1.0),
            n_treated=4, n_control=8, n_bins=120,
        )
        defaults.update(kwargs)
        return GroupTraceConfig(**defaults)

    def test_shapes(self, rng):
        traces = generate_group(self._config(), rng)
        assert traces.treated.shape == (4, 120)
        assert traces.control.shape == (8, 120)
        assert traces.shared.shape == (120,)

    def test_spatial_correlation(self, rng):
        """Same-service units are strongly correlated (section 3.2.4,
        observation 1 — the DiD identification requirement)."""
        config = self._config(idiosyncratic_sigma=0.4,
                              pattern=StationaryPattern(
                                  level=50.0, ar_coefficient=0.8,
                                  noise_sigma=2.0))
        traces = generate_group(config, rng)
        corr = np.corrcoef(traces.treated[0], traces.control[0])[0, 1]
        assert corr > 0.7

    def test_treated_effects_only_hit_treated(self, rng):
        config = self._config(
            treated_effects=(LevelShift(start=60, magnitude=50.0),))
        traces = generate_group(config, rng)
        assert traces.treated[:, 80:].mean() > 90.0
        assert traces.control[:, 80:].mean() < 60.0

    def test_shared_effects_hit_everyone(self, rng):
        config = self._config(
            shared_effects=(LevelShift(start=60, magnitude=50.0),))
        traces = generate_group(config, rng)
        assert traces.treated[:, 80:].mean() > 90.0
        assert traces.control[:, 80:].mean() > 90.0

    def test_no_control_units(self, rng):
        traces = generate_group(self._config(n_control=0), rng)
        assert traces.control.shape == (0, 120)
        with pytest.raises(ParameterError):
            traces.control_mean

    def test_hotspots_inflate_some_units(self, rng):
        config = self._config(hotspot_fraction=0.5, n_treated=20,
                              n_control=0, idiosyncratic_sigma=0.1)
        traces = generate_group(config, rng)
        means = traces.treated.mean(axis=1)
        assert means.max() - means.min() > 2.0

    def test_invalid_config(self):
        with pytest.raises(ParameterError):
            self._config(n_treated=0)
        with pytest.raises(ParameterError):
            self._config(n_bins=4)
        with pytest.raises(ParameterError):
            self._config(hotspot_fraction=2.0)


class TestCorpusSpec:
    def test_full_scale_counts_match_paper(self):
        spec = CorpusSpec(scale=1.0)
        inducing = spec.counts("inducing")
        clean = spec.counts("clean")
        assert sum(inducing.values()) == 5702
        assert sum(clean.values()) == 4280
        assert sum(inducing.values()) + sum(clean.values()) == 9982
        assert inducing[KpiCharacter.SEASONAL] == 378
        assert clean[KpiCharacter.SEASONAL] == 327
        assert spec.positives() == 968

    def test_scaled_counts_proportional(self):
        spec = CorpusSpec(scale=0.1)
        assert sum(spec.counts("inducing").values()) == pytest.approx(
            570, abs=3)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            CorpusSpec(scale=0.0)
        with pytest.raises(ParameterError):
            CorpusSpec(pre_bins=10)
        with pytest.raises(ParameterError):
            CorpusSpec(effect_sigmas=(5.0, 3.0))


class TestEvaluationCorpus:
    @pytest.fixture(scope="class")
    def items(self):
        return list(EvaluationCorpus(CorpusSpec(scale=0.02)))

    def test_len_matches_iteration(self, items):
        corpus = EvaluationCorpus(CorpusSpec(scale=0.02))
        assert len(corpus) == len(items)

    def test_deterministic(self, items):
        again = list(EvaluationCorpus(CorpusSpec(scale=0.02)))
        assert len(again) == len(items)
        for a, b in zip(items, again):
            np.testing.assert_array_equal(a.treated, b.treated)
            assert a.truth == b.truth

    def test_positives_only_in_inducing_half(self, items):
        assert all(i.half == "inducing"
                   for i in items if i.truth.positive)
        assert sum(i.truth.positive for i in items) > 0

    def test_every_character_present(self, items):
        present = {i.character for i in items}
        assert present == set(KpiCharacter)

    def test_launch_modes_mixed(self, items):
        modes = {i.launch_mode for i in items}
        assert modes == {LaunchMode.DARK, LaunchMode.FULL}

    def test_control_xor_history(self, items):
        for item in items:
            if item.control is not None:
                assert item.launch_mode is LaunchMode.DARK
                assert not item.affected_service
                assert item.history is None
            else:
                assert item.history is not None
                assert item.history.shape[0] == 30

    def test_series_lengths(self, items):
        spec = CorpusSpec(scale=0.02)
        for item in items:
            assert item.treated.shape[1] == spec.n_bins
            assert item.change_index == spec.pre_bins

    def test_positive_items_have_visible_effect(self, items):
        for item in items:
            if not item.truth.positive:
                continue
            if item.truth.kind != "level_shift":
                continue
            aggregate = item.treated_aggregate
            pre = aggregate[:item.change_index].mean()
            post = aggregate[item.change_index + 30:].mean()
            assert abs(post - pre) > 0.0

    def test_truth_validation(self):
        with pytest.raises(ParameterError):
            ItemTruth(positive=True, start_index=None)

    def test_treated_aggregate_shape(self, items):
        item = items[0]
        assert item.treated_aggregate.shape == (item.treated.shape[1],)
