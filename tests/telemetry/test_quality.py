"""Tests for KPI quality screening."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.telemetry.quality import assess_quality


class TestAssessQuality:
    def test_clean_series_ok(self, rng):
        report = assess_quality(rng.normal(size=200))
        assert report.ok
        assert report.coverage() == 1.0

    def test_missing_run_flagged(self, rng):
        x = rng.normal(size=200)
        x[50:60] = np.nan
        report = assess_quality(x)
        assert "missing" in report.kinds
        issue = [i for i in report.issues if i.kind == "missing"][0]
        assert (issue.start, issue.end) == (50, 60)

    def test_short_missing_not_flagged(self, rng):
        x = rng.normal(size=200)
        x[50] = np.nan
        report = assess_quality(x, min_missing=3)
        assert "missing" not in report.kinds

    def test_flatline_flagged(self, rng):
        x = rng.normal(size=200)
        x[100:150] = 7.0
        report = assess_quality(x)
        assert "flatline" in report.kinds
        issue = [i for i in report.issues if i.kind == "flatline"][0]
        assert issue.start == 100 and issue.end == 150

    def test_flatline_threshold(self, rng):
        x = rng.normal(size=200)
        x[100:120] = 7.0          # 20 < default 30
        assert "flatline" not in assess_quality(x).kinds
        assert "flatline" in assess_quality(x, min_flatline=15).kinds

    def test_quantised_flagged(self):
        x = np.tile([0.0, 1.0, 2.0], 400)
        report = assess_quality(x)
        assert "quantised" in report.kinds

    def test_binary_kpi_quantised(self, rng):
        x = (rng.random(size=1000) > 0.5).astype(float)
        assert "quantised" in assess_quality(x).kinds

    def test_short_series_not_quantised(self):
        assert "quantised" not in assess_quality([1.0, 2.0, 3.0]).kinds

    def test_stale_tail_flagged(self, rng):
        x = rng.normal(size=200)
        x[-15:] = x[-15]
        report = assess_quality(x)
        assert "stale" in report.kinds

    def test_stale_not_double_flagged_with_flatline(self):
        x = np.r_[np.random.default_rng(0).normal(size=100),
                  np.full(60, 3.0)]
        report = assess_quality(x)
        assert "flatline" in report.kinds
        assert "stale" not in report.kinds

    def test_coverage_accounts_for_spans(self, rng):
        x = rng.normal(size=100)
        x[0:10] = np.nan
        report = assess_quality(x)
        assert report.coverage() == pytest.approx(0.9)

    def test_constant_series_is_flatline(self):
        report = assess_quality(np.full(100, 5.0))
        assert "flatline" in report.kinds
        assert report.coverage() == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            assess_quality([])

    def test_report_kinds_sorted_unique(self, rng):
        x = rng.normal(size=300)
        x[10:20] = np.nan
        x[30:45] = np.nan
        report = assess_quality(x)
        assert report.kinds == tuple(sorted(set(report.kinds)))
