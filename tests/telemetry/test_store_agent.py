"""Tests for the metric store, subscriptions, agents and aggregation."""

import numpy as np
import pytest

from repro.exceptions import TelemetryError
from repro.telemetry.agent import Agent
from repro.telemetry.aggregation import (ServiceAggregator, aggregate_series,
                                         aggregate_service_kpi)
from repro.telemetry.kpi import (KpiCatalog, KpiKey, KpiSpec,
                                 standard_server_kpis)
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries
from repro.types import KpiCharacter


@pytest.fixture
def store():
    return MetricStore()


@pytest.fixture
def key():
    return KpiKey("server", "web-1", "memory_utilization")


class TestKpiKey:
    def test_str(self, key):
        assert str(key) == "server:web-1:memory_utilization"

    def test_invalid_entity_type(self):
        with pytest.raises(TelemetryError):
            KpiKey("rack", "r1", "m")

    def test_empty_fields(self):
        with pytest.raises(TelemetryError):
            KpiKey("server", "", "m")


class TestKpiCatalog:
    def test_standard_server_kpis(self):
        catalog = standard_server_kpis()
        assert "cpu_context_switch_count" in catalog
        spec = catalog.get("cpu_context_switch_count")
        assert spec.character is KpiCharacter.VARIABLE
        assert catalog.get("memory_utilization").character \
            is KpiCharacter.STATIONARY

    def test_register_conflict(self):
        catalog = KpiCatalog()
        catalog.register(KpiSpec("m", "server", KpiCharacter.STATIONARY))
        with pytest.raises(TelemetryError):
            catalog.register(KpiSpec("m", "server", KpiCharacter.VARIABLE))

    def test_reregister_identical_ok(self):
        catalog = KpiCatalog()
        spec = KpiSpec("m", "server", KpiCharacter.STATIONARY)
        catalog.register(spec)
        catalog.register(spec)
        assert len(catalog) == 1

    def test_by_level(self):
        catalog = standard_server_kpis()
        assert all(s.level == "server" for s in catalog.by_level("server"))

    def test_unknown_raises(self):
        with pytest.raises(TelemetryError):
            KpiCatalog().get("zzz")

    def test_invalid_spec(self):
        with pytest.raises(TelemetryError):
            KpiSpec("m", "rack", KpiCharacter.STATIONARY)
        with pytest.raises(TelemetryError):
            KpiSpec("m", "server", KpiCharacter.STATIONARY,
                    aggregation="max")


class TestMetricStore:
    def test_append_and_read(self, store, key):
        store.append(key, TimeSeries(0, 60, [1.0, 2.0]))
        store.append(key, TimeSeries(120, 60, [3.0]))
        np.testing.assert_array_equal(store.series(key).values,
                                      [1.0, 2.0, 3.0])

    def test_gap_rejected(self, store, key):
        store.append(key, TimeSeries(0, 60, [1.0]))
        with pytest.raises(TelemetryError):
            store.append(key, TimeSeries(120, 60, [2.0]))

    def test_wrong_bin_width_rejected(self, store, key):
        with pytest.raises(TelemetryError):
            store.append(key, TimeSeries(0, 30, [1.0]))

    def test_range_query(self, store, key):
        store.append(key, TimeSeries(0, 60, np.arange(10.0)))
        fragment = store.range(key, 120, 300)
        np.testing.assert_array_equal(fragment.values, [2.0, 3.0, 4.0])

    def test_unknown_key_raises(self, store, key):
        with pytest.raises(TelemetryError):
            store.series(key)
        assert store.maybe_series(key) is None

    def test_window_matrix(self, store):
        keys = [KpiKey("server", "h%d" % i, "m") for i in range(3)]
        for i, k in enumerate(keys):
            store.append(k, TimeSeries(0, 60, [float(i)] * 5))
        matrix = store.window_matrix(keys, 60, 240)
        assert matrix.shape == (3, 3)
        np.testing.assert_array_equal(matrix[2], [2.0, 2.0, 2.0])

    def test_window_matrix_incomplete_coverage_raises(self, store, key):
        store.append(key, TimeSeries(0, 60, [1.0, 2.0]))
        with pytest.raises(TelemetryError):
            store.window_matrix([key], 0, 300)

    def test_subscription_push(self, store, key):
        received = []
        store.subscribe([key], lambda k, f: received.append((k, f)))
        store.append(key, TimeSeries(0, 60, [1.0]))
        assert len(received) == 1
        assert received[0][0] == key

    def test_subscription_filters_keys(self, store, key):
        other = KpiKey("server", "web-2", "memory_utilization")
        received = []
        store.subscribe([key], lambda k, f: received.append(k))
        store.append(other, TimeSeries(0, 60, [1.0]))
        assert received == []

    def test_subscription_cancel(self, store, key):
        received = []
        sub = store.subscribe([key], lambda k, f: received.append(k))
        sub.cancel()
        store.append(key, TimeSeries(0, 60, [1.0]))
        assert received == []
        assert store.subscription_count() == 0

    def test_empty_subscription_raises(self, store):
        with pytest.raises(TelemetryError):
            store.subscribe([], lambda k, f: None)


class TestAgent:
    def test_collect_round(self, store):
        agent = Agent("web-1", store)
        agent.add_server_collector("memory_utilization", lambda t: 42.0)
        agent.add_instance_collector("svc.a", "page_view_count",
                                     lambda t: float(t))
        agent.collect(0)
        agent.collect(60)
        mem = store.series(KpiKey("server", "web-1", "memory_utilization"))
        pvc = store.series(KpiKey("instance", "svc.a@web-1",
                                  "page_view_count"))
        np.testing.assert_array_equal(mem.values, [42.0, 42.0])
        np.testing.assert_array_equal(pvc.values, [0.0, 60.0])

    def test_out_of_order_collection_rejected(self, store):
        agent = Agent("web-1", store)
        agent.add_server_collector("m", lambda t: 1.0)
        agent.collect(0)
        with pytest.raises(TelemetryError):
            agent.collect(0)

    def test_duplicate_collector_rejected(self, store):
        agent = Agent("web-1", store)
        agent.add_server_collector("m", lambda t: 1.0)
        with pytest.raises(TelemetryError):
            agent.add_server_collector("m", lambda t: 2.0)

    def test_nonfinite_value_rejected(self, store):
        agent = Agent("web-1", store)
        agent.add_server_collector("m", lambda t: float("nan"))
        with pytest.raises(TelemetryError):
            agent.collect(0)

    def test_collect_range(self, store):
        agent = Agent("web-1", store)
        agent.add_server_collector("m", lambda t: float(t // 60))
        agent.collect_range(0, rounds=5)
        series = store.series(KpiKey("server", "web-1", "m"))
        np.testing.assert_array_equal(series.values, [0, 1, 2, 3, 4])


class TestAggregation:
    def test_mean_and_sum(self):
        series = [TimeSeries(0, 60, [2.0, 4.0]),
                  TimeSeries(0, 60, [6.0, 8.0])]
        np.testing.assert_array_equal(
            aggregate_series(series, "mean").values, [4.0, 6.0])
        np.testing.assert_array_equal(
            aggregate_series(series, "sum").values, [8.0, 12.0])

    def test_invalid_how(self):
        with pytest.raises(TelemetryError):
            aggregate_series([TimeSeries(0, 60, [1.0])], "max")

    def test_service_kpi_uses_spec_aggregation(self, store):
        catalog = KpiCatalog()
        catalog.register(KpiSpec("page_view_count", "instance",
                                 KpiCharacter.SEASONAL, aggregation="sum"))
        for host in ("h1", "h2"):
            store.append(KpiKey("instance", "svc@%s" % host,
                                "page_view_count"),
                         TimeSeries(0, 60, [10.0, 20.0]))
        result = aggregate_service_kpi(
            store, catalog, "svc", ["svc@h1", "svc@h2"],
            "page_view_count", 0, 120)
        np.testing.assert_array_equal(result.values, [20.0, 40.0])

    def test_service_aggregator_publishes(self, store):
        catalog = KpiCatalog()
        catalog.register(KpiSpec("rd", "instance", KpiCharacter.STATIONARY,
                                 aggregation="mean"))
        for host in ("h1", "h2"):
            store.append(KpiKey("instance", "svc@%s" % host, "rd"),
                         TimeSeries(0, 60, [10.0, 30.0]))
        aggregator = ServiceAggregator(store, catalog)
        key = aggregator.publish("svc", ["svc@h1", "svc@h2"], "rd", 0, 120)
        np.testing.assert_array_equal(store.series(key).values,
                                      [10.0, 30.0])

    def test_control_group_mean(self, store):
        keys = []
        for i, host in enumerate(("h1", "h2")):
            k = KpiKey("server", host, "m")
            store.append(k, TimeSeries(0, 60, [float(i), float(i)]))
            keys.append(k)
        aggregator = ServiceAggregator(store, KpiCatalog())
        np.testing.assert_array_equal(
            aggregator.mean_of(keys, 0, 120), [0.5, 0.5])
