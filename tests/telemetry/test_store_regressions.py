"""Regression tests for the metric store's subscription and append paths.

Four historical defects are pinned here:

* cancelled subscriptions used to stay on the store's push list forever
  (merely flagged inactive), so a long-lived store serving a live
  pipeline leaked one dead entry per assessed change;
* ``append`` used to rebuild the full concatenated array per fragment —
  O(n) copying per push, quadratic over a stream — now replaced by
  geometrically over-allocated columns;
* ``series()`` used to hand out a live slice of the column buffer, so
  any caller mutation silently corrupted the store for every other
  reader;
* ``Subscription`` used to be a value-compared dataclass, so cancelling
  one of two identical registrations could prune the *other* from the
  push list (``list.remove`` finds the first equal element).
"""

import numpy as np
import pytest

from repro.telemetry.kpi import KpiKey
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries


@pytest.fixture
def store():
    return MetricStore()


@pytest.fixture
def key():
    return KpiKey("server", "web-1", "memory_utilization")


class TestSubscriptionLifecycle:
    def test_cancel_prunes_the_push_list(self, store, key):
        subs = [store.subscribe([key], lambda k, f: None)
                for _ in range(10)]
        for sub in subs:
            sub.cancel()
        assert store.subscription_count() == 0
        # the actual list is empty, not just marked inactive
        assert store._subscriptions == []

    def test_cancel_twice_is_safe(self, store, key):
        sub = store.subscribe([key], lambda k, f: None)
        sub.cancel()
        sub.cancel()
        assert store.subscription_count() == 0

    def test_cancelled_subscription_receives_nothing(self, store, key):
        got = []
        sub = store.subscribe([key], lambda k, f: got.append(f))
        store.append(key, TimeSeries(0, 60, [1.0]))
        sub.cancel()
        store.append(key, TimeSeries(60, 60, [2.0]))
        assert len(got) == 1

    def test_callback_may_cancel_during_push(self, store, key):
        """A subscriber cancelling (mutating the list) mid-delivery must
        not break the iteration over the remaining subscribers."""
        delivered = []
        subs = []

        def cancelling_callback(k, fragment):
            delivered.append("cancelling")
            subs[0].cancel()

        subs.append(store.subscribe([key], cancelling_callback))
        store.subscribe([key], lambda k, f: delivered.append("other"))
        store.append(key, TimeSeries(0, 60, [1.0]))
        assert delivered == ["cancelling", "other"]
        assert store.subscription_count() == 1

    def test_callback_may_subscribe_during_push(self, store, key):
        def subscribing_callback(k, fragment):
            store.subscribe([key], lambda k2, f2: None)

        store.subscribe([key], subscribing_callback)
        store.append(key, TimeSeries(0, 60, [1.0]))
        assert store.subscription_count() == 2


class TestSeriesAliasing:
    def test_series_does_not_alias_the_column_buffer(self, store, key):
        store.append(key, TimeSeries(0, 60, [1.0, 2.0]))
        view = store.series(key)
        assert not np.shares_memory(view.values,
                                    store._columns[key].values)

    def test_series_view_is_read_only(self, store, key):
        store.append(key, TimeSeries(0, 60, [1.0, 2.0]))
        view = store.series(key)
        assert view.values.flags.writeable is False
        with pytest.raises(ValueError):
            view.values[0] = 99.0
        assert store.series(key).values.tolist() == [1.0, 2.0]

    def test_mutating_a_derived_slice_cannot_corrupt_the_store(
            self, store, key):
        store.append(key, TimeSeries(0, 60, [1.0, 2.0, 3.0]))
        sub = store.series(key).slice_time(60, 180)
        sub.values[0] = 99.0             # transforms return owning copies
        assert store.series(key).values.tolist() == [1.0, 2.0, 3.0]


class TestSubscriptionIdentity:
    def test_identical_subscriptions_are_distinct(self, store, key):
        def callback(k, fragment):
            pass

        first = store.subscribe([key], callback)
        second = store.subscribe([key], callback)
        assert first is not second
        assert first != second           # identity, not field equality

    def test_cancelling_one_twin_keeps_the_other(self, store, key):
        got = []

        def callback(k, fragment):
            got.append(fragment.start)

        first = store.subscribe([key], callback)
        second = store.subscribe([key], callback)
        first.cancel()
        store.append(key, TimeSeries(0, 60, [1.0]))
        assert got == [0]                # exactly one delivery
        assert store.subscription_count() == 1
        second.cancel()
        assert store.subscription_count() == 0


class TestAppendGrowth:
    def test_many_small_appends_preserve_values(self, store, key):
        values = np.arange(500, dtype=np.float64)
        for i, value in enumerate(values):
            store.append(key, TimeSeries(i * 60, 60, [value]))
        series = store.series(key)
        assert len(series) == 500
        assert np.array_equal(series.values, values)
        assert series.start == 0

    def test_view_is_invalidated_by_append(self, store, key):
        store.append(key, TimeSeries(0, 60, [1.0, 2.0]))
        first = store.series(key)
        store.append(key, TimeSeries(120, 60, [3.0]))
        second = store.series(key)
        assert len(first) == 2          # old view unchanged
        assert len(second) == 3

    def test_column_overallocates_geometrically(self, store, key):
        store.append(key, TimeSeries(0, 60, np.ones(10)))
        column = store._columns[key]
        capacities = {column.values.size}
        for i in range(200):
            store.append(key, TimeSeries((10 + i) * 60, 60, [1.0]))
            capacities.add(column.values.size)
            column = store._columns[key]
        # doubling growth: few distinct capacities, not one per append
        assert len(capacities) < 8
        assert column.values.size >= column.length

    def test_range_after_growth(self, store, key):
        for i in range(100):
            store.append(key, TimeSeries(i * 60, 60, [float(i)]))
        window = store.range(key, 600, 1200)
        assert window.values.tolist() == [float(i) for i in range(10, 20)]
