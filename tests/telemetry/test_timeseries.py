"""Tests for time-binned series and event binning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError, TelemetryError
from repro.telemetry.timeseries import TimeSeries, bin_events


class TestTimeSeries:
    def test_geometry(self):
        ts = TimeSeries(start=120, bin_seconds=60, values=[1.0, 2.0, 3.0])
        assert len(ts) == 3
        assert ts.end == 300
        np.testing.assert_array_equal(ts.timestamps(), [120, 180, 240])

    def test_index_of(self):
        ts = TimeSeries(0, 60, [1.0, 2.0])
        assert ts.index_of(0) == 0
        assert ts.index_of(59) == 0
        assert ts.index_of(60) == 1
        with pytest.raises(TelemetryError):
            ts.index_of(120)
        with pytest.raises(TelemetryError):
            ts.index_of(-1)

    def test_slice_time(self):
        ts = TimeSeries(0, 60, np.arange(10.0))
        sub = ts.slice_time(120, 300)
        assert sub.start == 120
        np.testing.assert_array_equal(sub.values, [2.0, 3.0, 4.0])

    def test_slice_clamps(self):
        ts = TimeSeries(0, 60, np.arange(5.0))
        sub = ts.slice_time(-600, 6000)
        assert len(sub) == 5

    def test_slice_unaligned_raises(self):
        ts = TimeSeries(0, 60, np.arange(5.0))
        with pytest.raises(TelemetryError):
            ts.slice_time(30, 120)

    def test_slice_around(self):
        ts = TimeSeries(0, 60, np.arange(10.0))
        sub = ts.slice_around(300, before=2, after=3)
        np.testing.assert_array_equal(sub.values, [3.0, 4.0, 5.0, 6.0, 7.0])

    def test_resample(self):
        ts = TimeSeries(0, 60, np.arange(7.0))
        coarse = ts.resample(3)
        assert coarse.bin_seconds == 180
        np.testing.assert_array_equal(coarse.values, [1.0, 4.0])

    def test_resample_factor_one_returns_owning_copy(self):
        """Regression: ``resample(1)`` used to return ``self``, aliasing
        the caller's buffer while every other transform copies."""
        ts = TimeSeries(0, 60, np.arange(5.0))
        same = ts.resample(1)
        assert same is not ts
        assert same.start == ts.start and same.bin_seconds == ts.bin_seconds
        np.testing.assert_array_equal(same.values, ts.values)
        assert not np.shares_memory(same.values, ts.values)

    def test_shifted(self):
        ts = TimeSeries(0, 60, [1.0])
        assert ts.shifted(600).start == 600

    @pytest.mark.parametrize("transform", [
        lambda ts: ts.slice_time(60, 240),
        lambda ts: ts.resample(1),
        lambda ts: ts.resample(2),
        lambda ts: ts.shifted(600),
    ], ids=["slice_time", "resample_1", "resample_2", "shifted"])
    def test_transforms_return_owning_copies(self, transform):
        """Mutation isolation: no transform result may share memory with
        its source — a mutated result once corrupted cached store views
        through exactly such aliasing."""
        ts = TimeSeries(0, 60, np.arange(6.0))
        derived = transform(ts)
        assert not np.shares_memory(derived.values, ts.values)
        derived.values[0] = 99.0
        np.testing.assert_array_equal(ts.values, np.arange(6.0))

    def test_addition_aligned(self):
        a = TimeSeries(0, 60, [1.0, 2.0])
        b = TimeSeries(0, 60, [10.0, 20.0])
        np.testing.assert_array_equal((a + b).values, [11.0, 22.0])

    def test_addition_misaligned_raises(self):
        a = TimeSeries(0, 60, [1.0, 2.0])
        b = TimeSeries(60, 60, [1.0, 2.0])
        with pytest.raises(TelemetryError):
            a + b

    def test_average(self):
        series = [TimeSeries(0, 60, [2.0, 4.0]),
                  TimeSeries(0, 60, [4.0, 8.0])]
        np.testing.assert_array_equal(TimeSeries.average(series).values,
                                      [3.0, 6.0])

    def test_average_empty_raises(self):
        with pytest.raises(TelemetryError):
            TimeSeries.average([])

    def test_invalid_bin_raises(self):
        with pytest.raises(ParameterError):
            TimeSeries(0, 0, [1.0])

    def test_nan_values_rejected(self):
        with pytest.raises(ParameterError):
            TimeSeries(0, 60, [np.nan])


class TestBinEvents:
    def test_counts(self):
        ts = bin_events([0, 30, 59, 60, 200], start=0, end=240)
        np.testing.assert_array_equal(ts.values, [3.0, 1.0, 0.0, 1.0])

    def test_out_of_range_dropped(self):
        ts = bin_events([-5, 0, 300], start=0, end=240)
        assert ts.values.sum() == 1.0

    def test_weights_sum(self):
        ts = bin_events([0, 10, 70], start=0, end=120,
                        weights=[1.5, 2.5, 10.0])
        np.testing.assert_array_equal(ts.values, [4.0, 10.0])

    def test_weight_length_mismatch(self):
        with pytest.raises(ParameterError):
            bin_events([0, 10], start=0, end=60, weights=[1.0])

    def test_unaligned_interval_raises(self):
        with pytest.raises(ParameterError):
            bin_events([0], start=0, end=90)

    def test_empty_interval_raises(self):
        with pytest.raises(ParameterError):
            bin_events([0], start=60, end=60)

    @given(st.lists(st.integers(0, 3599), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_total_count_preserved_property(self, times):
        """Every in-range event lands in exactly one bin."""
        ts = bin_events(times, start=0, end=3600)
        assert ts.values.sum() == len(times)
        assert len(ts) == 60
