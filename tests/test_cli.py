"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io.csvio import write_matrix, write_series
from repro.telemetry.timeseries import TimeSeries


@pytest.fixture
def treated_control_csvs(tmp_path, rng):
    shared = 50.0 + rng.normal(0, 1.0, size=240)
    treated = shared + rng.normal(0, 0.5, size=(4, 240))
    control = shared + rng.normal(0, 0.5, size=(12, 240))
    treated[:, 120:] += 6.0
    t_path = tmp_path / "treated.csv"
    c_path = tmp_path / "control.csv"
    write_matrix(treated, ["t%d" % i for i in range(4)], 0, 60, t_path)
    write_matrix(control, ["c%d" % i for i in range(12)], 0, 60, c_path)
    return str(t_path), str(c_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out


class TestDetect:
    def test_detect_finds_shift(self, tmp_path, rng, capsys):
        x = 50.0 + rng.normal(0, 0.5, size=240)
        x[120:] += 5.0
        path = tmp_path / "series.csv"
        write_series(TimeSeries(0, 60, x), path)
        code = main(["detect", str(path), "--change-minute", "120"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["series_bins"] == 240
        assert payload["changes"]
        assert payload["changes"][0]["kind"] == "level_shift"

    def test_detect_quiet_series(self, tmp_path, rng, capsys):
        x = 50.0 + rng.normal(0, 0.5, size=240)
        path = tmp_path / "series.csv"
        write_series(TimeSeries(0, 60, x), path)
        assert main(["detect", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["changes"] == []

    def test_detect_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,value\n0,1.0\n0,2.0\n")
        assert main(["detect", str(path)]) == 1
        assert "error" in json.loads(capsys.readouterr().err)


class TestAssess:
    def test_assess_attributes_change(self, treated_control_csvs, capsys):
        t_path, c_path = treated_control_csvs
        code = main(["assess", t_path, "--control", c_path,
                     "--change-minute", "120"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "caused_by_change"
        assert payload["control"] == "peers"
        assert payload["did_normalised_alpha"] > 1.0

    def test_assess_without_control(self, treated_control_csvs, capsys):
        t_path, _ = treated_control_csvs
        assert main(["assess", t_path, "--change-minute", "120"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "caused_by_change"
        assert "notes" in payload

    def test_omega_option(self, treated_control_csvs, capsys):
        t_path, c_path = treated_control_csvs
        assert main(["assess", t_path, "--control", c_path,
                     "--change-minute", "120", "--omega", "5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "caused_by_change"


class TestGenerateAndCost:
    def test_generate_then_assess(self, tmp_path, capsys):
        t_path = str(tmp_path / "t.csv")
        c_path = str(tmp_path / "c.csv")
        assert main(["generate", "--out-treated", t_path,
                     "--out-control", c_path, "--seed", "3"]) == 0
        capsys.readouterr()
        assert main(["assess", t_path, "--control", c_path,
                     "--change-minute", "120"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "caused_by_change"

    def test_cost_reports_all_methods(self, capsys):
        assert main(["cost", "--seconds", "0.05"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"funnel", "cusum", "mrls"}
        for entry in payload.values():
            assert entry["us_per_window"] > 0


def _strip_timings(payload):
    """Drop wall-clock-dependent values so JSON documents compare stably."""
    if isinstance(payload, dict):
        return {key: _strip_timings(value)
                for key, value in payload.items()
                if key not in ("seconds", "throughput_jobs_per_second")}
    if isinstance(payload, list):
        return [_strip_timings(value) for value in payload]
    return payload


_FLEET_ARGS = ["assess-fleet", "--services", "4", "--servers", "20",
               "--changes", "3", "--history-days", "1", "--seed", "3"]


class TestAssessFleet:
    def test_report_structure(self, capsys):
        assert main(_FLEET_ARGS + ["--detectors", "funnel,improved_sst"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] > 0
        assert set(payload["detectors"]) == {"funnel", "improved_sst"}
        funnel = payload["detectors"]["funnel"]
        assert funnel["jobs"] == funnel["labelled_jobs"]
        assert 0.0 <= funnel["precision"] <= 1.0
        assert 0.0 <= funnel["recall"] <= 1.0
        stages = payload["instrumentation"]["stages"]
        for stage in ("plan", "fetch", "detect", "execute"):
            assert stage in stages
        assert payload["scenario"]["changes"] == 3

    def test_golden_json_round_trip(self, capsys):
        """Two runs (one parallel) print the same JSON, timings aside."""
        assert main(list(_FLEET_ARGS)) == 0
        first = capsys.readouterr().out
        assert main(_FLEET_ARGS + ["--workers", "2", "--batch-size", "4"]) == 0
        second = capsys.readouterr().out
        a, b = json.loads(first), json.loads(second)
        a["scenario"].pop("workers"), b["scenario"].pop("workers")
        # Cache counters differ between serial/parallel processes
        # (workers warm their own caches); everything else must match.
        a.pop("cache"), b.pop("cache")
        assert _strip_timings(a) == _strip_timings(b)
        # Round-trip: parse -> dump -> parse is lossless.
        assert json.loads(json.dumps(a, sort_keys=True)) == a

    def test_unknown_detector_errors(self, capsys):
        assert main(_FLEET_ARGS + ["--detectors", "prophet"]) == 1
        assert "error" in json.loads(capsys.readouterr().err)


class TestGoldenJson:
    """detect/assess emit stable, round-trippable JSON documents."""

    def test_detect_golden_round_trip(self, tmp_path, rng, capsys):
        x = 50.0 + rng.normal(0, 0.5, size=240)
        x[120:] += 5.0
        path = tmp_path / "series.csv"
        write_series(TimeSeries(0, 60, x), path)
        args = ["detect", str(path), "--change-minute", "120"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert json.dumps(payload, indent=2, sort_keys=True) + "\n" == first

    def test_assess_golden_round_trip(self, treated_control_csvs, capsys):
        t_path, c_path = treated_control_csvs
        args = ["assess", t_path, "--control", c_path,
                "--change-minute", "120"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert json.dumps(payload, indent=2, sort_keys=True) + "\n" == first


_LIVE_ARGS = ["live-replay", "--services", "2", "--servers", "8",
              "--changes", "2", "--window-bins", "120",
              "--change-offset", "60", "--history-days", "1", "--seed", "3"]


class TestLiveReplay:
    def test_replay_reports_verdicts(self, capsys):
        assert main(list(_LIVE_ARGS)) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ticks"] > 0
        assert payload["fragments_streamed"] > 0
        report = payload["service"]
        assert report["closed_changes"] == 2
        assert report["verdicts"] > 0
        assert report["counters"]["repro_live_changes_admitted_total"] == 2
        assert payload["mean_detection_lag_bins"] is not None

    def test_check_offline_parity(self, capsys):
        assert main(_LIVE_ARGS + ["--check-offline"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parity"]["ok"] is True
        assert payload["parity"]["live_only"] == []
        assert payload["parity"]["offline_only"] == []

    def test_verdict_jsonl_sink(self, tmp_path, capsys):
        path = tmp_path / "verdicts.jsonl"
        assert main(_LIVE_ARGS + ["--verdicts", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == payload["verdicts"]
        doc = json.loads(lines[0])
        for field in ("change_id", "entity_type", "entity", "metric",
                      "verdict", "reason"):
            assert field in doc

    def test_obs_artifacts_include_live_counters(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        assert main(_LIVE_ARGS + ["--obs-dir", str(obs_dir)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(obs_dir), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        names = [row["name"] for row in report["counters"]]
        assert "repro_live_fragments_total" in names
        assert "repro_live_verdicts_total" in names
        paths = [tuple(p["path"]) for p in report["paths"]]
        assert ("live_replay",) in paths
        assert ("live_replay", "live_change") in paths

    def test_overload_surfaces_shed_counters(self, capsys):
        assert main(_LIVE_ARGS + ["--queue-capacity", "2",
                                  "--drain-budget", "8"]) == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["service"]["counters"]
        assert counters.get("repro_live_shed_fragments_total", 0) > 0


class TestAssessFleetVerdicts:
    def test_verdicts_jsonl_written(self, tmp_path, capsys):
        path = tmp_path / "offline.jsonl"
        assert main(_FLEET_ARGS + ["--verdicts", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdicts_path"] == str(path)
        lines = path.read_text().strip().splitlines()
        assert lines
        doc = json.loads(lines[0])
        for field in ("change_id", "entity_type", "entity", "metric",
                      "detector", "verdict"):
            assert field in doc
