"""Run the library's docstring examples as tests.

Every public-API docstring example must actually work — a reproduction
whose README/examples drift from the code is worse than none.
"""

import doctest

import pytest

import repro.core.did
import repro.core.funnel
import repro.core.ika
import repro.core.scoring
import repro.core.sst
import repro.core.streaming
import repro.engine.instrument
import repro.simulation.clock
import repro.simulation.scenario
import repro.telemetry.agent
import repro.telemetry.store
import repro.telemetry.timeseries
import repro.topology.entities

MODULES = [
    repro.core.did,
    repro.core.funnel,
    repro.core.ika,
    repro.core.scoring,
    repro.core.sst,
    repro.core.streaming,
    repro.engine.instrument,
    repro.simulation.clock,
    repro.simulation.scenario,
    repro.telemetry.agent,
    repro.telemetry.store,
    repro.telemetry.timeseries,
    repro.topology.entities,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, (
        "%d doctest failure(s) in %s" % (results.failed, module.__name__))
    # Make sure the modules we chose actually contain examples.
    if module in (repro.core.funnel, repro.telemetry.timeseries):
        assert results.attempted > 0
