"""Cross-cutting property-based tests on the library's core invariants.

These complement the per-module tests with properties that hold across
randomly generated inputs (hypothesis): invariances of the detection
transform, equivalence of the streaming and offline paths, and algebraic
identities of the evaluation machinery.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.funnel import Funnel
from repro.core.ika import IkaSST
from repro.core.rsst import ImprovedSSTParams
from repro.core.scoring import robust_normalise
from repro.core.streaming import StreamingDetector
from repro.eval.confusion import ConfusionMatrix
from repro.telemetry.timeseries import TimeSeries

seeds = st.integers(0, 2 ** 31)


class TestDetectionInvariances:
    @given(seeds, st.floats(0.5, 50.0), st.floats(-100.0, 100.0))
    @settings(max_examples=15, deadline=None)
    def test_scores_affine_invariant(self, seed, scale, shift):
        """Scoring a*x + b after normalisation equals scoring x:
        FUNNEL's verdicts cannot depend on the KPI's units."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=120)
        x[60:] += 4.0
        ika = IkaSST()
        s1 = ika.scores(robust_normalise(x))
        s2 = ika.scores(robust_normalise(scale * x + shift))
        np.testing.assert_allclose(s1, s2, atol=1e-5)

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_detection_mirror_symmetry(self, seed):
        """Negating the series flips the detected direction only."""
        rng = np.random.default_rng(seed)
        x = 10.0 + rng.normal(0, 0.5, size=200)
        x[120:] += 4.0
        up = Funnel().detect(x, change_index=120)
        down = Funnel().detect(-x, change_index=120)
        assert len(up) == len(down)
        for a, b in zip(up, down):
            assert a.index == b.index
            assert a.start_index == b.start_index
            assert a.direction == -b.direction

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_streaming_equals_offline(self, seed):
        """The streaming detector's first declaration matches offline."""
        rng = np.random.default_rng(seed)
        x = 10.0 + rng.normal(0, 0.5, size=220)
        magnitude = float(rng.uniform(3.5, 8.0))
        x[120:] += magnitude
        offline = Funnel().detect(x, change_index=120)
        online = StreamingDetector(change_index=120).extend(x)
        assert bool(offline) == bool(online)
        if offline:
            assert online[0].index == offline[0].index

    @given(seeds, st.integers(1, 40))
    @settings(max_examples=10, deadline=None)
    def test_prefix_padding_does_not_undetect(self, seed, pad):
        """Extending the quiet baseline never removes a detection."""
        rng = np.random.default_rng(seed)
        x = 10.0 + rng.normal(0, 0.5, size=200)
        x[120:] += 5.0
        base = Funnel().detect(x, change_index=120)
        padded = np.r_[10.0 + rng.normal(0, 0.5, size=pad), x]
        shifted = Funnel().detect(padded, change_index=120 + pad)
        assert bool(base) == bool(shifted)


class TestBatchedScoringParity:
    """``scores_batch`` is the deployed cross-series path; the per-point
    ``scores_reference`` is the specification.  Pin them element-wise
    over random stacks, parameters, and NaN-padded ragged layouts."""

    @given(seeds, st.integers(1, 5), st.integers(80, 160),
           st.sampled_from([(5, 2), (7, 3), (9, 3), (9, 5)]))
    @settings(max_examples=10, deadline=None)
    def test_batch_matches_reference(self, seed, n_series, length, shape):
        omega, eta = shape
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(n_series, length))
        stack[:, length // 2:] += rng.uniform(0.0, 5.0, size=(n_series, 1))
        ika = IkaSST(ImprovedSSTParams(omega=omega, eta=eta))
        batched = ika.scores_batch(stack)
        for row in range(n_series):
            np.testing.assert_allclose(
                batched[row], ika.scores_reference(stack[row]), atol=1e-10)
            np.testing.assert_array_equal(batched[row],
                                          ika.scores(stack[row]))

    @given(seeds, st.lists(st.integers(70, 150), min_size=2, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_ragged_nan_stack_matches_reference(self, seed, lengths):
        rng = np.random.default_rng(seed)
        width = max(lengths)
        padded = np.full((len(lengths), width), np.nan)
        rows = []
        for i, n in enumerate(lengths):
            row = rng.normal(size=n)
            row[n // 2:] += 4.0
            rows.append(row)
            padded[i, :n] = row
        ika = IkaSST()
        batched = ika.scores_batch(padded)
        for i, row in enumerate(rows):
            np.testing.assert_allclose(
                batched[i, :row.size], ika.scores_reference(row),
                atol=1e-10)
            assert not batched[i, row.size:].any()


class TestEvaluationAlgebra:
    matrices = st.builds(
        ConfusionMatrix,
        tp=st.integers(0, 500), tn=st.integers(0, 500),
        fp=st.integers(0, 500), fn=st.integers(0, 500),
    )

    @given(matrices, matrices)
    @settings(max_examples=50, deadline=None)
    def test_addition_commutes(self, a, b):
        left = a + b
        right = b + a
        assert (left.tp, left.tn, left.fp, left.fn) == \
            (right.tp, right.tn, right.fp, right.fn)

    @given(matrices, st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_scaling_preserves_rates(self, m, factor):
        scaled = m.scaled(factor)
        for attr in ("precision", "recall", "tnr", "accuracy"):
            original = getattr(m, attr)
            after = getattr(scaled, attr)
            if np.isnan(original):
                assert np.isnan(after)
            else:
                assert after == pytest.approx(original)

    @given(matrices)
    @settings(max_examples=50, deadline=None)
    def test_accuracy_between_recall_and_tnr(self, m):
        """Accuracy is a weighted mean of recall and TNR."""
        if m.positives == 0 or m.negatives == 0:
            return
        lo = min(m.recall, m.tnr)
        hi = max(m.recall, m.tnr)
        assert lo - 1e-12 <= m.accuracy <= hi + 1e-12


class TestTimeSeriesAlgebra:
    @given(seeds, st.integers(1, 5), st.integers(10, 60))
    @settings(max_examples=30, deadline=None)
    def test_resample_preserves_mean(self, seed, factor, n):
        rng = np.random.default_rng(seed)
        usable = (n // factor) * factor
        if usable == 0:
            return
        ts = TimeSeries(0, 60, rng.normal(size=n))
        coarse = ts.resample(factor)
        assert coarse.values.mean() == pytest.approx(
            ts.values[:usable].mean())

    @given(seeds, st.integers(0, 20), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_slice_is_subset(self, seed, lo_bins, width):
        rng = np.random.default_rng(seed)
        ts = TimeSeries(0, 60, rng.normal(size=50))
        lo = lo_bins * 60
        hi = lo + width * 60
        sub = ts.slice_time(lo, hi)
        for i, value in enumerate(sub.values):
            assert value == ts.values[lo_bins + i]
