"""Tests for the shared types and exception hierarchy."""

import numpy as np
import pytest

from repro.exceptions import (ChangeLogError, ConvergenceError,
                              EvaluationError, InsufficientDataError,
                              ParameterError, ReproError, TelemetryError,
                              TopologyError)
from repro.types import (Assessment, ChangeKind, DetectedChange,
                         KpiCharacter, LaunchMode, Verdict, as_float_array)


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc_cls", [
        ParameterError, InsufficientDataError, ConvergenceError,
        TopologyError, TelemetryError, ChangeLogError, EvaluationError,
    ])
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_value_errors_catchable_as_such(self):
        # Callers using plain ValueError handling still work.
        assert issubclass(ParameterError, ValueError)
        assert issubclass(InsufficientDataError, ValueError)

    def test_convergence_error_carries_iterations(self):
        exc = ConvergenceError("no luck", iterations=42)
        assert exc.iterations == 42


class TestEnums:
    def test_verdict_positive(self):
        assert Verdict.CAUSED_BY_CHANGE.positive
        assert not Verdict.NO_CHANGE.positive
        assert not Verdict.OTHER_REASONS.positive
        assert not Verdict.SEASONALITY.positive

    def test_enum_values_stable(self):
        """These values are serialised by the CLI and the JSONL log."""
        assert ChangeKind.SOFTWARE_UPGRADE.value == "software_upgrade"
        assert LaunchMode.DARK.value == "dark"
        assert KpiCharacter.SEASONAL.value == "seasonal"
        assert Verdict.CAUSED_BY_CHANGE.value == "caused_by_change"


class TestDetectedChange:
    def test_delay(self):
        change = DetectedChange(index=20, start_index=12, score=1.0)
        assert change.delay == 8

    def test_start_after_detection_rejected(self):
        with pytest.raises(ValueError):
            DetectedChange(index=10, start_index=11, score=1.0)

    def test_frozen(self):
        change = DetectedChange(index=5, start_index=5, score=0.5)
        with pytest.raises(AttributeError):
            change.index = 6


class TestAssessment:
    def test_positive_mirrors_verdict(self):
        assert Assessment(verdict=Verdict.CAUSED_BY_CHANGE).positive
        assert not Assessment(verdict=Verdict.SEASONALITY).positive

    def test_defaults(self):
        result = Assessment(verdict=Verdict.NO_CHANGE)
        assert result.change is None
        assert result.did_estimate is None
        assert result.notes == ()


class TestAsFloatArray:
    def test_list_coerced(self):
        arr = as_float_array([1, 2, 3])
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]

    def test_2d_rejected(self):
        with pytest.raises(ParameterError):
            as_float_array(np.zeros((2, 2)))

    def test_nan_rejected_with_name(self):
        with pytest.raises(ParameterError, match="mymetric"):
            as_float_array([1.0, float("nan")], name="mymetric")

    def test_empty_allowed(self):
        assert as_float_array([]).size == 0
