"""Tests for fleet entities and impact-set identification."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.entities import Fleet, Instance, Server, Service
from repro.topology.impact import identify_impact_set


@pytest.fixture
def fig4_fleet():
    """The paper's Fig. 4 setting: service A with instances A1..An,
    related to B and D; B related to C."""
    fleet = Fleet()
    fleet.add_service("svc.a", ["a-%d" % i for i in range(1, 7)])
    fleet.add_service("svc.b", ["b-1", "b-2"])
    fleet.add_service("svc.c", ["c-1"])
    fleet.add_service("svc.d", ["d-1"])
    # Siblings under "svc" are auto-related (a-b, a-c, a-d, ...); prune
    # to the exact Fig. 4 shape by building explicit relations instead.
    return fleet


class TestEntities:
    def test_server_validation(self):
        with pytest.raises(TopologyError):
            Server("", "svc.a")

    def test_instance_name(self):
        assert Instance("svc.a", "host-1").name == "svc.a@host-1"

    def test_service_instances(self):
        service = Service("svc.a", ["h1", "h2"])
        assert [i.hostname for i in service.instances] == ["h1", "h2"]


class TestFleet:
    def test_add_and_query(self, fig4_fleet):
        assert len(fig4_fleet) == 4
        assert fig4_fleet.server("a-1").service == "svc.a"
        assert len(fig4_fleet.instances_of("svc.a")) == 6

    def test_duplicate_service_rejected(self, fig4_fleet):
        with pytest.raises(TopologyError):
            fig4_fleet.add_service("svc.a", ["x-1"])

    def test_server_cannot_serve_two_services(self, fig4_fleet):
        with pytest.raises(TopologyError):
            fig4_fleet.add_service("svc.e", ["a-1"])

    def test_duplicate_hostnames_rejected(self):
        fleet = Fleet()
        with pytest.raises(TopologyError):
            fleet.add_service("svc.x", ["h", "h"])

    def test_unknown_lookups_raise(self, fig4_fleet):
        with pytest.raises(TopologyError):
            fig4_fleet.service("nope")
        with pytest.raises(TopologyError):
            fig4_fleet.server("nope")

    def test_relationships_cached_and_invalidated(self, fig4_fleet):
        g1 = fig4_fleet.relationships
        assert g1 is fig4_fleet.relationships
        fig4_fleet.add_service("svc.e", ["e-1"])
        assert fig4_fleet.relationships is not g1

    def test_explicit_relationship(self, fig4_fleet):
        fleet = Fleet()
        fleet.add_service("alpha", ["h1"])
        fleet.add_service("beta.core", ["h2"])
        fleet.add_relationship("alpha", "beta.core")
        assert fleet.relationships.has_edge("alpha", "beta.core")

    def test_explicit_relationship_unknown_raises(self, fig4_fleet):
        with pytest.raises(TopologyError):
            fig4_fleet.add_relationship("svc.a", "nope")


class TestImpactSet:
    def test_dark_launch_split(self, fig4_fleet):
        impact = identify_impact_set(fig4_fleet, "svc.a", ["a-1", "a-2"])
        assert impact.treated_hostnames == ("a-1", "a-2")
        assert set(impact.control_hostnames) == {"a-3", "a-4", "a-5",
                                                 "a-6"}
        assert impact.dark_launched

    def test_full_launch_has_no_control(self, fig4_fleet):
        hosts = ["a-%d" % i for i in range(1, 7)]
        impact = identify_impact_set(fig4_fleet, "svc.a", hosts)
        assert not impact.dark_launched
        assert impact.cinstances == ()

    def test_affected_services_via_relationships(self, fig4_fleet):
        impact = identify_impact_set(fig4_fleet, "svc.a", ["a-1"])
        # Siblings svc.b/c/d are reachable from svc.a in the
        # naming-derived graph — all are affected (Fig. 4 semantics).
        assert impact.affected_services == {"svc.b", "svc.c", "svc.d"}

    def test_tinstances_match_tservers(self, fig4_fleet):
        impact = identify_impact_set(fig4_fleet, "svc.a", ["a-3"])
        assert [i.name for i in impact.tinstances] == ["svc.a@a-3"]

    def test_monitored_entities(self, fig4_fleet):
        impact = identify_impact_set(fig4_fleet, "svc.a", ["a-1"])
        entities = impact.monitored_entities()
        assert ("server", "a-1") in entities
        assert ("instance", "svc.a@a-1") in entities
        assert ("service", "svc.a") in entities
        assert ("service", "svc.b") in entities
        # Instances of affected services are NOT in the impact set.
        assert ("instance", "svc.b@b-1") not in entities

    def test_unknown_host_rejected(self, fig4_fleet):
        with pytest.raises(TopologyError):
            identify_impact_set(fig4_fleet, "svc.a", ["b-1"])

    def test_empty_deployment_rejected(self, fig4_fleet):
        with pytest.raises(TopologyError):
            identify_impact_set(fig4_fleet, "svc.a", [])

    def test_duplicate_hostnames_deduplicated(self, fig4_fleet):
        impact = identify_impact_set(fig4_fleet, "svc.a", ["a-1", "a-1"])
        assert impact.treated_hostnames == ("a-1",)
