"""Tests for the service-relationship graph."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.graph import ServiceGraph


@pytest.fixture
def fig4_graph():
    """The paper's Fig. 4 topology: A-B, A-D, B-C."""
    return ServiceGraph.from_edges([("a", "b"), ("a", "d"), ("b", "c")])


class TestConstruction:
    def test_add_node_idempotent(self):
        g = ServiceGraph()
        g.add_node("x")
        g.add_node("x")
        assert len(g) == 1

    def test_add_edge_creates_nodes(self):
        g = ServiceGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g

    def test_self_loop_rejected(self):
        g = ServiceGraph()
        with pytest.raises(TopologyError):
            g.add_edge("a", "a")

    def test_remove_edge(self, fig4_graph):
        fig4_graph.remove_edge("a", "b")
        assert not fig4_graph.has_edge("a", "b")

    def test_remove_missing_edge_raises(self, fig4_graph):
        with pytest.raises(TopologyError):
            fig4_graph.remove_edge("c", "d")

    def test_edges_sorted(self, fig4_graph):
        assert fig4_graph.edges == [("a", "b"), ("a", "d"), ("b", "c")]


class TestQueries:
    def test_successors_predecessors(self, fig4_graph):
        assert fig4_graph.successors("a") == {"b", "d"}
        assert fig4_graph.predecessors("b") == {"a"}

    def test_neighbors_undirected(self, fig4_graph):
        assert fig4_graph.neighbors("b") == {"a", "c"}

    def test_degree(self, fig4_graph):
        assert fig4_graph.degree("a") == 2
        assert fig4_graph.degree("c") == 1

    def test_unknown_node_raises(self, fig4_graph):
        with pytest.raises(TopologyError):
            fig4_graph.successors("zzz")

    def test_iteration_and_len(self, fig4_graph):
        assert sorted(fig4_graph) == ["a", "b", "c", "d"]
        assert len(fig4_graph) == 4


class TestReachability:
    def test_fig4_affected_services(self, fig4_graph):
        """A change in A affects B, C and D (paper Fig. 4)."""
        assert fig4_graph.reachable("a") == {"b", "c", "d"}

    def test_reachable_excludes_start(self, fig4_graph):
        assert "a" not in fig4_graph.reachable("a")

    def test_directed_reachability(self, fig4_graph):
        assert fig4_graph.reachable("b", directed=True) == {"c"}
        assert fig4_graph.reachable("d", directed=True) == set()

    def test_max_hops(self, fig4_graph):
        assert fig4_graph.reachable("a", max_hops=1) == {"b", "d"}
        assert fig4_graph.reachable("a", max_hops=2) == {"b", "c", "d"}

    def test_disconnected_components(self):
        g = ServiceGraph.from_edges([("a", "b"), ("x", "y")])
        assert g.reachable("a") == {"b"}
        assert g.connected_component("x") == {"x", "y"}

    def test_cycle_terminates(self):
        g = ServiceGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        assert g.reachable("a") == {"b", "c"}
