"""Tests for service naming rules and derived relationships."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.naming import (ancestors_of, derive_relationships,
                                   hierarchy_distance, parent_of,
                                   validate_service_name)


class TestValidation:
    @pytest.mark.parametrize("name", [
        "search", "search.frontend", "ads.anti-cheat.v2_scoring",
    ])
    def test_valid_names(self, name):
        assert validate_service_name(name) == name

    @pytest.mark.parametrize("name", [
        "", "Search", "search..frontend", "search.", "9lives",
        "search.Front", "a b",
    ])
    def test_invalid_names(self, name):
        with pytest.raises(TopologyError):
            validate_service_name(name)


class TestHierarchy:
    def test_parent_of(self):
        assert parent_of("a.b.c") == "a.b"
        assert parent_of("a") == ""

    def test_ancestors(self):
        assert ancestors_of("a.b.c") == ["a.b", "a"]
        assert ancestors_of("a") == []

    def test_hierarchy_distance(self):
        assert hierarchy_distance("a.b", "a.c") == 2
        assert hierarchy_distance("a.b", "a.b.c") == 1
        assert hierarchy_distance("a", "b") == 2
        assert hierarchy_distance("a.b", "a.b") == 0


class TestDeriveRelationships:
    def test_parent_child_edge(self):
        g = derive_relationships(["search", "search.frontend"])
        assert g.has_edge("search", "search.frontend")

    def test_sibling_edges(self):
        g = derive_relationships(["search.frontend", "search.backend"])
        assert g.has_edge("search.backend", "search.frontend")

    def test_unrelated_services_not_linked(self):
        g = derive_relationships(["search.frontend", "mail.smtp"])
        assert g.reachable("search.frontend") == set()

    def test_missing_parent_does_not_appear(self):
        g = derive_relationships(["search.frontend", "search.backend"])
        assert "search" not in g

    def test_explicit_edges_merged(self):
        g = derive_relationships(
            ["search.frontend", "ads.serving"],
            explicit_edges=[("search.frontend", "ads.serving")],
        )
        assert g.has_edge("search.frontend", "ads.serving")

    def test_explicit_edge_unknown_service_raises(self):
        with pytest.raises(TopologyError):
            derive_relationships(["a"], explicit_edges=[("a", "zzz")])

    def test_duplicate_names_raise(self):
        with pytest.raises(TopologyError):
            derive_relationships(["a", "a"])

    def test_three_level_hierarchy(self):
        names = ["svc", "svc.web", "svc.web.static", "svc.web.dynamic",
                 "svc.db"]
        g = derive_relationships(names)
        assert g.has_edge("svc", "svc.web")
        assert g.has_edge("svc.web", "svc.web.static")
        assert g.has_edge("svc.web.dynamic", "svc.web.static")
        assert g.has_edge("svc.db", "svc.web")
        # Cousins are not directly related...
        assert not g.has_edge("svc.db", "svc.web.static")
        # ...but are reachable through the hierarchy.
        assert "svc.web.static" in g.reachable("svc.db")
